//! Fixture coverage for the seven rules: one violating and one clean
//! file per rule (and per L6 sub-rule), asserted down to the exact
//! `line:column` spans, plus the scoping behavior (boundary files,
//! numeric-core crates, L3/L4 crate lists, crate roots, the L6/L7
//! facade-crate exemption) and the live-workspace meta-check that
//! mirrors the CI gate.

use idg_lint::{lint_source, Config, Diagnostic, Rule};

/// Lint a fixture as if it lived at `path` in the workspace, under the
/// committed policy.
fn lint(path: &str, src: &str) -> Vec<Diagnostic> {
    lint_source(path, src, &Config::workspace()).expect("fixture parses")
}

/// `(line, column)` spans of one rule's diagnostics, in emission order.
fn spans(diags: &[Diagnostic], rule: Rule) -> Vec<(usize, usize)> {
    diags
        .iter()
        .filter(|d| d.rule == rule)
        .map(|d| (d.line, d.column))
        .collect()
}

// ---------------------------------------------------------------------------
// L1 — panic freedom
// ---------------------------------------------------------------------------

#[test]
fn l1_fires_on_unwrap_expect_panic_and_boundary_indexing() {
    // Linted as the boundary module: all four diagnostics, span-precise.
    let diags = lint(
        "crates/telescope/src/io.rs",
        include_str!("fixtures/l1_violating.rs"),
    );
    assert_eq!(
        spans(&diags, Rule::L1),
        vec![(5, 23), (6, 22), (8, 9), (10, 6)]
    );
    assert_eq!(diags.len(), 4, "only L1 fires on this fixture: {diags:?}");
    assert!(diags[0].message.contains(".unwrap()"));
    assert!(diags[1].message.contains(".expect()"));
    assert!(diags[2].message.contains("panic!"));
    assert!(diags[3].message.contains("unchecked indexing"));
}

#[test]
fn l1_indexing_applies_only_to_boundary_files() {
    let diags = lint(
        "crates/plan/src/fixture.rs",
        include_str!("fixtures/l1_violating.rs"),
    );
    assert_eq!(spans(&diags, Rule::L1), vec![(5, 23), (6, 22), (8, 9)]);
}

#[test]
fn l1_clean_fixture_passes_even_as_boundary_file() {
    let diags = lint(
        "crates/telescope/src/io.rs",
        include_str!("fixtures/l1_clean.rs"),
    );
    assert_eq!(diags, vec![], "clean fixture must produce no diagnostics");
}

// ---------------------------------------------------------------------------
// L2 — numeric discipline
// ---------------------------------------------------------------------------

#[test]
fn l2_fires_on_float_eq_and_raw_narrowing_cast() {
    let diags = lint(
        "crates/kernels/src/fixture.rs",
        include_str!("fixtures/l2_violating.rs"),
    );
    assert_eq!(spans(&diags, Rule::L2), vec![(6, 10), (9, 23)]);
    assert_eq!(diags.len(), 2, "narrow_f32 is a blessed helper: {diags:?}");
    assert!(diags[0].message.contains("float `==`"));
    assert!(diags[1].message.contains("`as f32`"));
}

#[test]
fn l2_cast_rule_applies_only_to_numeric_core_crates() {
    // Outside kernels/fft/math only the float-equality half applies.
    let diags = lint(
        "crates/plan/src/fixture.rs",
        include_str!("fixtures/l2_violating.rs"),
    );
    assert_eq!(spans(&diags, Rule::L2), vec![(6, 10)]);
}

#[test]
fn l2_clean_fixture_passes_in_a_numeric_core_crate() {
    let diags = lint(
        "crates/kernels/src/fixture.rs",
        include_str!("fixtures/l2_clean.rs"),
    );
    assert_eq!(diags, vec![]);
}

// ---------------------------------------------------------------------------
// L3 — kernel ↔ observability contract
// ---------------------------------------------------------------------------

#[test]
fn l3_fires_on_counterless_kernel_entry_point() {
    let diags = lint(
        "crates/kernels/src/fixture.rs",
        include_str!("fixtures/l3_violating.rs"),
    );
    assert_eq!(spans(&diags, Rule::L3), vec![(3, 5)]);
    assert_eq!(diags.len(), 1);
    assert!(diags[0].message.contains("gridder_fixture"));
    assert!(diags[0].message.contains("add_kernel"));
}

#[test]
fn l3_applies_only_to_kernel_crates() {
    let diags = lint(
        "crates/plan/src/fixture.rs",
        include_str!("fixtures/l3_violating.rs"),
    );
    assert_eq!(diags, vec![]);
}

#[test]
fn l3_clean_fixture_passes() {
    let diags = lint(
        "crates/kernels/src/fixture.rs",
        include_str!("fixtures/l3_clean.rs"),
    );
    assert_eq!(diags, vec![]);
}

#[test]
fn l3_fires_on_counterless_health_entry_point() {
    // The breaker health tracker is an L3 entry point like any kernel:
    // outcomes it absorbs must surface in the idg-obs counters.
    let diags = lint(
        "crates/gpusim/src/fixture.rs",
        include_str!("fixtures/l3_health_violating.rs"),
    );
    assert_eq!(spans(&diags, Rule::L3), vec![(4, 5)]);
    assert_eq!(diags.len(), 1);
    assert!(diags[0].message.contains("record_outcome_fixture"));
    assert!(diags[0].message.contains("add_health_outcomes"));
}

#[test]
fn l3_health_clean_fixture_passes() {
    let diags = lint(
        "crates/gpusim/src/fixture.rs",
        include_str!("fixtures/l3_health_clean.rs"),
    );
    assert_eq!(diags, vec![]);
}

#[test]
fn l3_fires_on_counterless_stream_entry_point() {
    // The streaming scheduler is an L3 entry point like any kernel:
    // chunks it admits must surface in the idg-obs stream counters.
    let diags = lint(
        "crates/stream/src/fixture.rs",
        include_str!("fixtures/l3_stream_violating.rs"),
    );
    assert_eq!(spans(&diags, Rule::L3), vec![(4, 5)]);
    assert_eq!(diags.len(), 1);
    assert!(diags[0].message.contains("run_stream_fixture"));
    assert!(diags[0].message.contains("add_chunks_ingested"));
}

#[test]
fn l3_stream_clean_fixture_passes() {
    let diags = lint(
        "crates/stream/src/fixture.rs",
        include_str!("fixtures/l3_stream_clean.rs"),
    );
    assert_eq!(diags, vec![]);
}

// ---------------------------------------------------------------------------
// L4 — typed fallibility
// ---------------------------------------------------------------------------

#[test]
fn l4_fires_on_option_failure_and_foreign_error_type() {
    let diags = lint(
        "crates/plan/src/fixture.rs",
        include_str!("fixtures/l4_violating.rs"),
    );
    assert_eq!(spans(&diags, Rule::L4), vec![(3, 5), (7, 5)]);
    assert_eq!(diags.len(), 2);
    assert!(diags[0].message.contains("parse_scale"));
    assert!(diags[0].message.contains("Option"));
    assert!(diags[1].message.contains("load_table"));
    assert!(diags[1].message.contains("Result<_, String>"));
}

#[test]
fn l4_exempt_crates_are_skipped() {
    let diags = lint(
        "crates/lint/src/fixture.rs",
        include_str!("fixtures/l4_violating.rs"),
    );
    assert_eq!(diags, vec![]);
}

#[test]
fn l4_clean_fixture_passes() {
    let diags = lint(
        "crates/plan/src/fixture.rs",
        include_str!("fixtures/l4_clean.rs"),
    );
    assert_eq!(diags, vec![]);
}

// ---------------------------------------------------------------------------
// L5 — forbid(unsafe_code) in crate roots
// ---------------------------------------------------------------------------

#[test]
fn l5_fires_on_crate_root_without_forbid() {
    let diags = lint(
        "crates/kernels/src/lib.rs",
        include_str!("fixtures/l5_violating.rs"),
    );
    assert_eq!(spans(&diags, Rule::L5), vec![(1, 1)]);
    assert_eq!(diags.len(), 1);
    assert!(diags[0].message.contains("#![forbid(unsafe_code)]"));
}

#[test]
fn l5_applies_only_to_crate_roots() {
    let diags = lint(
        "crates/kernels/src/fixture.rs",
        include_str!("fixtures/l5_violating.rs"),
    );
    assert_eq!(diags, vec![]);
}

#[test]
fn l5_clean_fixture_passes() {
    let diags = lint(
        "crates/kernels/src/lib.rs",
        include_str!("fixtures/l5_clean.rs"),
    );
    assert_eq!(diags, vec![]);
}

// ---------------------------------------------------------------------------
// L6 — lock discipline
// ---------------------------------------------------------------------------

fn workspace_root() -> std::path::PathBuf {
    idg_lint::find_workspace_root(std::path::Path::new(env!("CARGO_MANIFEST_DIR")))
        .expect("workspace root above crates/lint")
}

/// The committed policy plus the committed lock-order hierarchy — what
/// `run_check` lints the live workspace with.
fn full_cfg() -> Config {
    idg_lint::workspace_config(&workspace_root()).expect("lock order parses")
}

#[test]
fn l6_fires_on_bare_if_guarded_and_block_hidden_waits() {
    let diags = lint(
        "crates/stream/src/fixture.rs",
        include_str!("fixtures/l6_wait_violating.rs"),
    );
    assert_eq!(spans(&diags, Rule::L6), vec![(8, 12), (15, 16), (24, 20)]);
    assert_eq!(diags.len(), 3, "only L6(a) fires here: {diags:?}");
    assert!(diags[0].message.contains("predicate re-check"));
}

#[test]
fn l6_wait_clean_fixture_passes() {
    let diags = lint(
        "crates/stream/src/fixture.rs",
        include_str!("fixtures/l6_wait_clean.rs"),
    );
    assert_eq!(diags, vec![], "waits directly in loop bodies are legal");
}

#[test]
fn l6_fires_on_raw_poison_panicking_acquisitions() {
    let diags = lint(
        "crates/stream/src/fixture.rs",
        include_str!("fixtures/l6_raw_violating.rs"),
    );
    assert_eq!(spans(&diags, Rule::L6), vec![(6, 16), (7, 17), (8, 17)]);
    // The chained unwrap/expect calls also trip L1 — both rules police
    // the same sites from different angles.
    assert_eq!(spans(&diags, Rule::L1), vec![(6, 23), (7, 24), (8, 25)]);
    assert_eq!(diags.len(), 6);
    assert!(diags
        .iter()
        .any(|d| d.rule == Rule::L6 && d.message.contains("idg-sync facade")));
}

#[test]
fn l6_raw_clean_fixture_passes() {
    let diags = lint(
        "crates/stream/src/fixture.rs",
        include_str!("fixtures/l6_raw_clean.rs"),
    );
    assert_eq!(diags, vec![]);
}

#[test]
fn l6_fires_on_out_of_order_acquisitions() {
    let diags = lint_source(
        "crates/obs/src/fixture.rs",
        include_str!("fixtures/l6_order_violating.rs"),
        &full_cfg(),
    )
    .expect("fixture parses");
    assert_eq!(spans(&diags, Rule::L6), vec![(7, 13), (13, 13)]);
    assert_eq!(diags.len(), 2);
    assert!(diags[0].message.contains("lock-order violation"));
    assert!(diags[0].message.contains("session-gate"));
    assert!(diags[0].message.contains("collector"));
}

#[test]
fn l6_order_clean_fixture_passes() {
    let diags = lint_source(
        "crates/obs/src/fixture.rs",
        include_str!("fixtures/l6_order_clean.rs"),
        &full_cfg(),
    )
    .expect("fixture parses");
    assert_eq!(diags, vec![]);
}

#[test]
fn l6_order_needs_a_declared_hierarchy() {
    // Without lock classes (fixture-default config) sub-rule (c) has
    // nothing to enforce — the policy is file-borne, not hard-coded.
    let diags = lint(
        "crates/obs/src/fixture.rs",
        include_str!("fixtures/l6_order_violating.rs"),
    );
    assert_eq!(diags, vec![]);
}

#[test]
fn l6_fires_on_kernel_launch_under_live_guard() {
    let diags = lint(
        "crates/kernels/src/fixture.rs",
        include_str!("fixtures/l6_guard_violating.rs"),
    );
    assert_eq!(spans(&diags, Rule::L6), vec![(8, 5), (15, 9)]);
    assert_eq!(diags.len(), 2);
    assert!(diags[0].message.contains("gridder_cpu"));
    assert!(diags[0].message.contains("`st` is live"));
    assert!(diags[1].message.contains("fft_subgrids"));
}

#[test]
fn l6_guard_clean_fixture_passes() {
    let diags = lint(
        "crates/kernels/src/fixture.rs",
        include_str!("fixtures/l6_guard_clean.rs"),
    );
    assert_eq!(
        diags,
        vec![],
        "drop/scope-released guards and obs counter calls are legal"
    );
}

// ---------------------------------------------------------------------------
// L7 — sync facade
// ---------------------------------------------------------------------------

#[test]
fn l7_fires_on_std_sync_imports_and_qualified_paths() {
    let diags = lint(
        "crates/stream/src/fixture.rs",
        include_str!("fixtures/l7_violating.rs"),
    );
    assert_eq!(
        spans(&diags, Rule::L7),
        vec![(4, 16), (5, 16), (6, 22), (7, 18), (10, 24), (11, 18)]
    );
    assert_eq!(diags.len(), 6, "Arc stays legal: {diags:?}");
    assert!(diags[0].message.contains("Condvar"));
    assert!(diags[0].message.contains("idg-sync facade"));
    assert!(diags[3].message.contains("scope"));
    assert!(diags[3].message.contains("std::thread"));
}

#[test]
fn l7_clean_fixture_passes() {
    let diags = lint(
        "crates/stream/src/fixture.rs",
        include_str!("fixtures/l7_clean.rs"),
    );
    assert_eq!(
        diags,
        vec![],
        "facade imports plus std atomics/Arc/mpsc are legal"
    );
}

#[test]
fn l6_l7_exempt_the_facade_crates() {
    // `idg-sync` and `idg-mc` are the sanctioned home of the std
    // primitives; the concurrency rules must not fire there.
    for path in ["crates/sync/src/fixture.rs", "crates/mc/src/fixture.rs"] {
        let diags = lint(path, include_str!("fixtures/l7_violating.rs"));
        assert_eq!(spans(&diags, Rule::L7), vec![], "{path}");
        let diags = lint(path, include_str!("fixtures/l6_wait_violating.rs"));
        assert_eq!(spans(&diags, Rule::L6), vec![], "{path}");
    }
}

#[test]
fn model_check_gated_code_is_lint_exempt() {
    // `#[cfg(idg_model_check)]` gates verification scaffolding — the
    // seeded mutants violate L6 on purpose so the model checker can
    // demonstrate the failure, and must not trip the static rule.
    let src = "#[cfg(idg_model_check)]\nimpl S {\n    pub fn mutant(&self) {\n        \
               let mut g = self.m.lock();\n        g = self.cv.wait(g);\n    }\n}\n";
    let diags = lint("crates/stream/src/fixture.rs", src);
    assert_eq!(diags, vec![]);
}

/// L6/L7 launch with a zero-entry allowlist budget: the committed
/// allowlist must not grant either rule a single residual site.
#[test]
fn l6_l7_have_zero_allowlist_budget() {
    let allow = idg_lint::load_allowlist(&workspace_root()).expect("allowlist parses");
    assert!(
        allow
            .budgets
            .keys()
            .all(|(_, rule)| !matches!(rule, Rule::L6 | Rule::L7)),
        "L6/L7 must keep an empty allowlist budget: {:?}",
        allow.budgets
    );
}

// ---------------------------------------------------------------------------
// Diagnostic formatting and the live-workspace gate
// ---------------------------------------------------------------------------

#[test]
fn diagnostics_render_as_path_line_col_rule() {
    let diags = lint(
        "crates/kernels/src/lib.rs",
        include_str!("fixtures/l5_violating.rs"),
    );
    assert_eq!(
        diags[0].to_string(),
        "crates/kernels/src/lib.rs:1:1: [L5] library crate root lacks \
         `#![forbid(unsafe_code)]`"
    );
}

/// The meta-check: the live workspace must be clean modulo the
/// committed allowlist — exactly what `cargo run -p idg-lint` gates in
/// CI, so a drifting tree fails `cargo test` too.
#[test]
fn live_workspace_is_clean_modulo_allowlist() {
    let root = idg_lint::find_workspace_root(std::path::Path::new(env!("CARGO_MANIFEST_DIR")))
        .expect("workspace root above crates/lint");
    let report = idg_lint::run_check(&root).expect("lint pass runs");
    assert_eq!(report.status, 0, "workspace drifted:\n{}", report.text);
}

/// Workspace linting is deterministic: two passes agree span for span.
#[test]
fn workspace_lint_is_deterministic() {
    let root = idg_lint::find_workspace_root(std::path::Path::new(env!("CARGO_MANIFEST_DIR")))
        .expect("workspace root above crates/lint");
    let cfg = Config::workspace();
    let a = idg_lint::lint_workspace(&root, &cfg).expect("first pass");
    let b = idg_lint::lint_workspace(&root, &cfg).expect("second pass");
    assert_eq!(a, b);
    let mut sorted = a.clone();
    sorted.sort_by(|x, y| {
        (&x.path, x.line, x.column, x.rule).cmp(&(&y.path, y.line, y.column, y.rule))
    });
    assert_eq!(a, sorted, "diagnostics come back path/line/column-sorted");
}
