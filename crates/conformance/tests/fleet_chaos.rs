//! Correlated-fault chaos for the multi-device fleet executor.
//!
//! The single-device chaos suite injects faults that are uncorrelated
//! across jobs; real clusters fail differently — one *lemon* device
//! misbehaves persistently while its peers stay healthy. The fleet
//! contract under that correlated schedule:
//!
//! * the merged grid is **bit-identical** to the fault-free
//!   single-device reference — re-dispatching a lemon's jobs to peers
//!   moves work, never numbers;
//! * no job surfaces as a failure: the healthy peers absorb everything
//!   the lemon drops, without the proxy's CPU fallback;
//! * the lemon's circuit breaker observably trips (counter > 0 in the
//!   metrics snapshot) and the makespan inflation stays bounded;
//! * device OOM resolves on the degradation ladder (smaller batches,
//!   fewer buffers) rather than falling back to the CPU.

use idg::gpusim::{BreakerConfig, FaultConfig, FaultKind, TargetedFault};
use idg::types::FaultSite;
use idg::{Backend, FleetConfig, Proxy};
use idg_conformance::standard_cases;

/// One job per work group: enough dispatch points for a 4-device fleet
/// on the small conformance cases.
const WORK_GROUP_SIZE: usize = 1;

/// The chronically flaky member: roughly 46 % of its attempts fault
/// somewhere in the HtoD → kernel → DtoH chain.
fn lemon_faults(seed: u64) -> FaultConfig {
    FaultConfig {
        seed,
        transfer_corruption_rate: 0.25,
        kernel_fault_rate: 0.2,
        stall_rate: 0.1,
        ..FaultConfig::default()
    }
}

/// A breaker tuned for short conformance passes: two unhealthy
/// outcomes in a window of four trip it.
fn test_breaker() -> BreakerConfig {
    BreakerConfig {
        window: 4,
        trip_unhealthy: 2,
        cooldown_seconds: 0.5,
        half_open_probes: 2,
    }
}

fn fleet_proxy(case: &idg_conformance::Case, config: FleetConfig) -> Proxy {
    let mut proxy = Proxy::new(Backend::GpuPascal, case.obs.clone()).unwrap();
    proxy.work_group_size = WORK_GROUP_SIZE;
    proxy.with_fleet_config(config)
}

#[test]
fn lemon_fleet_delivers_bit_identical_grids_across_seeds() {
    let cases = standard_cases().expect("standard cases build");
    let case = &cases[2]; // ragged-tails: cheapest case
    let ds = case.dataset();

    // fault-free single-device reference
    let mut gold_proxy = Proxy::new(Backend::GpuPascal, case.obs.clone()).unwrap();
    gold_proxy.work_group_size = WORK_GROUP_SIZE;
    let plan = gold_proxy.plan(&ds.uvw).unwrap();
    let (gold, _) = gold_proxy
        .grid(&plan, &ds.uvw, &ds.visibilities, &ds.aterms)
        .unwrap();

    // fault-free fleet makespan: the inflation baseline
    let clean_fleet = fleet_proxy(
        case,
        FleetConfig {
            nr_devices: 4,
            member_faults: Vec::new(),
            breaker: Some(test_breaker()),
        },
    );
    let (_, clean_report) = clean_fleet
        .grid(&plan, &ds.uvw, &ds.visibilities, &ds.aterms)
        .unwrap();

    let mut tripped_seeds = 0;
    for seed in [2, 4, 8] {
        let proxy = fleet_proxy(
            case,
            FleetConfig {
                nr_devices: 4,
                member_faults: vec![(1, lemon_faults(seed))],
                breaker: Some(test_breaker()),
            },
        );
        let (grid, report, trace) = proxy
            .grid_observed(&plan, &ds.uvw, &ds.visibilities, &ds.aterms)
            .unwrap();

        // exactly-once delivery, no surfaced failures, no CPU fallback
        assert!(
            report.fallback_jobs.is_empty(),
            "seed {seed}: the healthy peers must absorb every job"
        );
        assert_eq!(trace.metrics.fallback_jobs, 0, "seed {seed}");

        // bit-identical numbers
        for (i, (x, y)) in grid.as_slice().iter().zip(gold.as_slice()).enumerate() {
            assert!(
                x.re.to_bits() == y.re.to_bits() && x.im.to_bits() == y.im.to_bits(),
                "seed {seed}: grids diverge at {i}: {x:?} vs {y:?}"
            );
        }

        // the lemon is visible in the report and the metrics snapshot
        let stats = report.fleet.as_ref().expect("fleet pass carries stats");
        if stats.breaker_trips > 0 {
            tripped_seeds += 1;
            assert!(
                trace.metrics.breaker_trips > 0,
                "seed {seed}: trips must reach the metrics snapshot"
            );
        }
        assert!(
            report.nr_retries > 0 || stats.redispatched_jobs > 0,
            "seed {seed}: a 46 % lemon cannot pass silently"
        );

        // bounded makespan inflation: every second beyond the clean
        // fleet's makespan must be accounted for by the fault model —
        // stalls (0.1 s each, at most one per retried attempt), retry
        // backoff, and at most one cooldown wait per breaker trip.
        // Anything above that budget would mean the dispatcher wastes
        // modeled time the schedule doesn't explain.
        let budget = clean_report.total_seconds
            + report.backoff_seconds
            + report.nr_retries as f64 * 0.1
            + (stats.breaker_trips as f64 + 1.0) * test_breaker().cooldown_seconds;
        assert!(
            report.total_seconds <= budget,
            "seed {seed}: makespan {} exceeds fault budget {budget}",
            report.total_seconds
        );
    }
    assert!(
        tripped_seeds > 0,
        "at least one chaos seed must trip the lemon's breaker"
    );
}

#[test]
fn oom_resolves_on_the_degradation_ladder_without_cpu_fallback() {
    let cases = standard_cases().expect("standard cases build");
    let case = &cases[2];
    let ds = case.dataset();

    let mut gold_proxy = Proxy::new(Backend::GpuPascal, case.obs.clone()).unwrap();
    gold_proxy.work_group_size = 4;
    let plan = gold_proxy.plan(&ds.uvw).unwrap();
    let (gold, _) = gold_proxy
        .grid(&plan, &ds.uvw, &ds.visibilities, &ds.aterms)
        .unwrap();

    let mut proxy = Proxy::new(Backend::GpuPascal, case.obs.clone()).unwrap();
    proxy.work_group_size = 4;
    let proxy = proxy.with_fleet_config(FleetConfig {
        nr_devices: 2,
        member_faults: vec![(
            0,
            FaultConfig::targeted(vec![TargetedFault {
                job: 0,
                attempt: 0,
                site: FaultSite::Alloc,
                kind: FaultKind::OutOfMemory,
            }]),
        )],
        breaker: None,
    });
    let (grid, report) = proxy
        .grid(&plan, &ds.uvw, &ds.visibilities, &ds.aterms)
        .unwrap();

    let stats = report.fleet.as_ref().unwrap();
    assert!(
        stats.degradation_steps >= 1,
        "device OOM must take the ladder"
    );
    assert!(
        report.fallback_jobs.is_empty(),
        "a halved batch fits: the CPU rung must not engage"
    );
    assert!(
        stats.per_device.iter().all(|d| d.alive),
        "degradation keeps the member in service"
    );
    assert_eq!(grid.as_slice(), gold.as_slice(), "ladder preserves bits");
}
