//! Streamed-vs-one-shot equivalence: `Proxy::grid_streamed` must
//! produce a **bit-identical** grid to `Proxy::grid`, and
//! `Proxy::degrid_streamed` bit-identical predicted visibilities to
//! `Proxy::degrid`, on every back-end, every standard case, every
//! chunk policy and every worker count.
//!
//! This is a stronger contract than the stage-budget conformance the
//! rest of the suite checks: streaming is pure re-scheduling of the
//! same f32 arithmetic, so not a single ULP of drift is tolerated. The
//! bit-identity rests on A-term-snapped chunk boundaries, the shared
//! whole-observation uv extents, and the single in-order deferred
//! commit (see `idg::proxy::streaming`); this suite is what pins that
//! argument against every backend's execution shape — including a
//! fault-injected fleet, where transient recovery must be exact.

use idg::stream::ChunkPolicy;
use idg::types::{Grid, Visibility};
use idg::{Backend, Proxy, StreamConfig};
use idg_conformance::standard_cases;

fn assert_bit_identical(reference: &Grid<f32>, streamed: &Grid<f32>, what: &str) {
    assert_eq!(reference.size(), streamed.size(), "{what}: grid shape");
    for (i, (a, b)) in reference
        .as_slice()
        .iter()
        .zip(streamed.as_slice())
        .enumerate()
    {
        assert!(
            a.re.to_bits() == b.re.to_bits() && a.im.to_bits() == b.im.to_bits(),
            "{what}: grid pixel {i} differs: one-shot {a:?} vs streamed {b:?}"
        );
    }
}

fn assert_vis_bit_identical(
    reference: &[Visibility<f32>],
    streamed: &[Visibility<f32>],
    what: &str,
) {
    assert_eq!(reference.len(), streamed.len(), "{what}: visibility count");
    for (i, (a, b)) in reference.iter().zip(streamed).enumerate() {
        for (p, (x, y)) in a.pols.iter().zip(b.pols.iter()).enumerate() {
            assert!(
                x.re.to_bits() == y.re.to_bits() && x.im.to_bits() == y.im.to_bits(),
                "{what}: visibility {i} pol {p} differs: one-shot {x:?} vs streamed {y:?}"
            );
        }
    }
}

/// The chunk policies each (case, backend) pair streams under:
/// one A-term interval per chunk (finest legal granularity), two
/// intervals (leaves an uneven tail on the non-multiple cases), and
/// the whole observation (streaming degenerates to one chunk).
fn policies(aterm_interval: usize, nr_timesteps: usize) -> Vec<(&'static str, ChunkPolicy)> {
    vec![
        ("per-interval", ChunkPolicy::by_timesteps(aterm_interval)),
        (
            "two-interval",
            ChunkPolicy::by_timesteps(aterm_interval * 2),
        ),
        ("whole-observation", ChunkPolicy::by_timesteps(nr_timesteps)),
    ]
}

#[test]
fn streamed_grids_are_bit_identical_across_backends_cases_policies_and_workers() {
    for case in standard_cases().expect("standard cases build") {
        let ds = case.dataset();
        for backend in Backend::all() {
            let proxy = Proxy::new(backend, case.obs.clone()).unwrap();
            let plan = proxy.plan(&ds.uvw).unwrap();
            let (reference, _) = proxy
                .grid(&plan, &ds.uvw, &ds.visibilities, &ds.aterms)
                .unwrap();
            // the scalar reference backend is the slowest; one streamed
            // run per policy pins it without doubling the suite's time
            let worker_counts: &[usize] = if backend == Backend::CpuReference {
                &[2]
            } else {
                &[1, 3]
            };
            for (policy_name, policy) in policies(case.obs.aterm_interval, case.obs.nr_timesteps) {
                for &workers in worker_counts {
                    let config = StreamConfig::new(policy, workers, workers.max(2));
                    let (streamed, report) = proxy
                        .grid_streamed(&config, &ds.uvw, &ds.visibilities, &ds.aterms)
                        .unwrap();
                    let what = format!(
                        "{} / {:?} / {policy_name} / {workers} workers",
                        case.name, backend
                    );
                    assert_bit_identical(&reference, &streamed, &what);
                    let stats = report.stream.expect("streamed pass carries stream stats");
                    assert_eq!(stats.failed_chunks, 0, "{what}");
                    assert_eq!(stats.completed_chunks, stats.nr_chunks, "{what}");
                }
            }
        }
    }
}

#[test]
fn streamed_degrid_visibilities_are_bit_identical_across_backends_cases_policies_and_workers() {
    for case in standard_cases().expect("standard cases build") {
        let ds = case.dataset();
        for backend in Backend::all() {
            let proxy = Proxy::new(backend, case.obs.clone()).unwrap();
            let plan = proxy.plan(&ds.uvw).unwrap();
            // grid a model first so the degrid input carries energy on
            // exactly the uv cells the plan covers
            let (model, _) = proxy
                .grid(&plan, &ds.uvw, &ds.visibilities, &ds.aterms)
                .unwrap();
            let (reference, _) = proxy.degrid(&plan, &model, &ds.uvw, &ds.aterms).unwrap();
            let worker_counts: &[usize] = if backend == Backend::CpuReference {
                &[2]
            } else {
                &[1, 3]
            };
            for (policy_name, policy) in policies(case.obs.aterm_interval, case.obs.nr_timesteps) {
                for &workers in worker_counts {
                    let config = StreamConfig::new(policy, workers, workers.max(2));
                    let (streamed, report) = proxy
                        .degrid_streamed(&config, &model, &ds.uvw, &ds.aterms)
                        .unwrap();
                    let what = format!(
                        "degrid {} / {:?} / {policy_name} / {workers} workers",
                        case.name, backend
                    );
                    assert_vis_bit_identical(&reference, &streamed, &what);
                    let stats = report.stream.expect("streamed pass carries stream stats");
                    assert_eq!(stats.direction, idg::StreamDirection::Degridding, "{what}");
                    assert_eq!(stats.failed_chunks, 0, "{what}");
                    assert_eq!(stats.completed_chunks, stats.nr_chunks, "{what}");
                }
            }
        }
    }
}

#[test]
fn visibility_bounded_policies_stream_bit_identically_too() {
    // the same equivalence through the other ChunkPolicy axis: a
    // visibility budget of two A-term intervals' worth per chunk
    let case = &standard_cases().expect("standard cases build")[0];
    let ds = case.dataset();
    let per_interval = case.obs.nr_baselines() * case.obs.nr_channels() * case.obs.aterm_interval;
    for backend in [Backend::CpuOptimized, Backend::GpuPascal] {
        let proxy = Proxy::new(backend, case.obs.clone()).unwrap();
        let plan = proxy.plan(&ds.uvw).unwrap();
        let (reference, _) = proxy
            .grid(&plan, &ds.uvw, &ds.visibilities, &ds.aterms)
            .unwrap();
        let config = StreamConfig::new(ChunkPolicy::by_visibilities(2 * per_interval), 2, 2);
        let (streamed, _) = proxy
            .grid_streamed(&config, &ds.uvw, &ds.visibilities, &ds.aterms)
            .unwrap();
        assert_bit_identical(
            &reference,
            &streamed,
            &format!("by-visibilities {backend:?}"),
        );
    }
}

#[test]
fn streamed_fleet_with_transient_faults_recovers_bit_identically() {
    // a lemon member injecting transient faults: retries re-run the
    // exact same modeled kernels, so the streamed fleet grid must still
    // match the *fault-free* one-shot grid bit for bit, with zero jobs
    // surviving to the CPU fallback
    use idg::gpusim::FaultConfig;
    use idg::FleetConfig;

    let case = &standard_cases().expect("standard cases build")[2]; // ragged-tails
    let ds = case.dataset();
    let clean = Proxy::new(Backend::GpuPascal, case.obs.clone()).unwrap();
    let plan = clean.plan(&ds.uvw).unwrap();
    let (reference, _) = clean
        .grid(&plan, &ds.uvw, &ds.visibilities, &ds.aterms)
        .unwrap();

    let mut proxy = Proxy::new(Backend::GpuPascal, case.obs.clone()).unwrap();
    proxy.work_group_size = 1;
    let proxy = proxy.with_fleet_config(FleetConfig {
        nr_devices: 3,
        member_faults: vec![(
            1,
            FaultConfig {
                seed: 4242,
                transfer_corruption_rate: 0.45,
                kernel_fault_rate: 0.35,
                stall_rate: 0.25,
                ..FaultConfig::default()
            },
        )],
        breaker: None,
    });
    let config = StreamConfig::new(ChunkPolicy::by_timesteps(case.obs.aterm_interval), 2, 2);
    let (streamed, report) = proxy
        .grid_streamed(&config, &ds.uvw, &ds.visibilities, &ds.aterms)
        .unwrap();
    assert_bit_identical(&reference, &streamed, "lemon fleet streamed");
    assert!(
        report.fallback_jobs.is_empty(),
        "transient faults must be absorbed by retries, not the CPU fallback"
    );
    assert!(
        report.nr_retries > 0,
        "the lemon member's schedule must actually inject faults"
    );
    let stats = report.stream.expect("stream stats");
    assert_eq!(stats.failed_chunks, 0);
}

#[test]
fn streamed_fleet_degrid_with_transient_faults_recovers_bit_identically() {
    // duplex twin of the lemon-fleet gridding case: the same flaky
    // member now injects faults into the splitter-side pipeline, and
    // the streamed fleet's predicted visibilities must still match the
    // fault-free one-shot degrid byte for byte
    use idg::gpusim::FaultConfig;
    use idg::FleetConfig;

    let case = &standard_cases().expect("standard cases build")[2]; // ragged-tails
    let ds = case.dataset();
    let clean = Proxy::new(Backend::GpuPascal, case.obs.clone()).unwrap();
    let plan = clean.plan(&ds.uvw).unwrap();
    let (model, _) = clean
        .grid(&plan, &ds.uvw, &ds.visibilities, &ds.aterms)
        .unwrap();
    let (reference, _) = clean.degrid(&plan, &model, &ds.uvw, &ds.aterms).unwrap();

    let mut proxy = Proxy::new(Backend::GpuPascal, case.obs.clone()).unwrap();
    proxy.work_group_size = 1;
    let proxy = proxy.with_fleet_config(FleetConfig {
        nr_devices: 3,
        member_faults: vec![(
            1,
            FaultConfig {
                seed: 4242,
                transfer_corruption_rate: 0.45,
                kernel_fault_rate: 0.35,
                stall_rate: 0.25,
                ..FaultConfig::default()
            },
        )],
        breaker: None,
    });
    let config = StreamConfig::new(ChunkPolicy::by_timesteps(case.obs.aterm_interval), 2, 2);
    let (streamed, report) = proxy
        .degrid_streamed(&config, &model, &ds.uvw, &ds.aterms)
        .unwrap();
    assert_vis_bit_identical(&reference, &streamed, "lemon fleet streamed degrid");
    assert!(
        report.fallback_jobs.is_empty(),
        "transient faults must be absorbed by retries, not the CPU fallback"
    );
    assert!(
        report.nr_retries > 0,
        "the lemon member's schedule must actually inject faults"
    );
    let stats = report.stream.expect("stream stats");
    assert_eq!(stats.direction, idg::StreamDirection::Degridding);
    assert_eq!(stats.failed_chunks, 0);
}
