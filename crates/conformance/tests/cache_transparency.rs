//! Cache-transparency suite: the pass-level kernel cache must be
//! *numerically invisible*.
//!
//! The cached geometry planes and adder/splitter phasor tables are
//! produced by the same expressions, in the same order, as the
//! previously inlined per-call code — so a warm pass (tables served
//! from the cache) must produce **bit-identical** buffers to a cold
//! pass (tables built on the spot), on every standard case and every
//! back-end, at every pipeline stage. Tolerance-based comparison would
//! hide exactly the kind of drift this suite exists to forbid.

use idg::{Backend, Proxy};
use idg_conformance::standard_cases;

#[test]
fn warm_cache_is_bit_identical_to_cold_on_all_cases_and_backends() {
    for case in standard_cases().expect("standard cases build") {
        let ds = case.dataset();
        for backend in Backend::all() {
            // cold: a fresh proxy, first pass builds every table
            let cold = Proxy::new(backend, case.obs.clone()).unwrap();
            let plan = cold.plan(&ds.uvw).unwrap();
            let cold_grid = cold
                .grid_stages(&plan, &ds.uvw, &ds.visibilities, &ds.aterms)
                .unwrap();
            let cold_degrid = cold
                .degrid_stages(&plan, &cold_grid.grid, &ds.uvw, &ds.aterms)
                .unwrap();

            // warm: run the same passes once to populate the cache,
            // then again so every table lookup is a hit
            let warm = Proxy::new(backend, case.obs.clone()).unwrap();
            let _ = warm
                .grid_stages(&plan, &ds.uvw, &ds.visibilities, &ds.aterms)
                .unwrap();
            assert!(
                warm.kernel_cache().misses() > 0,
                "{backend:?}/{}: warm-up pass must build tables",
                case.name
            );
            let misses_after_warmup = warm.kernel_cache().misses();
            let warm_grid = warm
                .grid_stages(&plan, &ds.uvw, &ds.visibilities, &ds.aterms)
                .unwrap();
            let warm_degrid = warm
                .degrid_stages(&plan, &cold_grid.grid, &ds.uvw, &ds.aterms)
                .unwrap();
            assert_eq!(
                warm.kernel_cache().misses(),
                misses_after_warmup,
                "{backend:?}/{}: the measured passes must be all-hit",
                case.name
            );
            assert!(warm.kernel_cache().hits() > 0);

            let tag = format!("{backend:?}/{}", case.name);
            assert_eq!(
                cold_grid.gridder_subgrids.as_slice(),
                warm_grid.gridder_subgrids.as_slice(),
                "{tag}: gridder subgrids"
            );
            assert_eq!(
                cold_grid.fft_subgrids.as_slice(),
                warm_grid.fft_subgrids.as_slice(),
                "{tag}: post-FFT subgrids"
            );
            assert_eq!(
                cold_grid.grid.as_slice(),
                warm_grid.grid.as_slice(),
                "{tag}: grid"
            );
            assert_eq!(
                cold_degrid.split_subgrids.as_slice(),
                warm_degrid.split_subgrids.as_slice(),
                "{tag}: splitter subgrids"
            );
            assert_eq!(
                cold_degrid.ifft_subgrids.as_slice(),
                warm_degrid.ifft_subgrids.as_slice(),
                "{tag}: post-iFFT subgrids"
            );
            assert_eq!(
                cold_degrid.visibilities, warm_degrid.visibilities,
                "{tag}: predicted visibilities"
            );
        }
    }
}
