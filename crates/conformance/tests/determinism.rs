//! Observational determinism under chaos: two runs of the same seeded
//! fault schedule must tell byte-identical stories.
//!
//! The fault injector, the pipeline model and the counter registers are
//! all deterministic functions of the seed, so the *observability*
//! outputs — the serialized [`MetricsSnapshot`] and the normalized
//! Chrome-trace event sequence (wall-clock timestamps dropped, modeled
//! timestamps kept) — must repeat exactly. This is what makes a trace
//! attached to a bug report replayable.

use idg::gpusim::{BreakerConfig, FaultConfig};
use idg::{Backend, FleetConfig, Proxy};
use idg_conformance::standard_cases;

const WORK_GROUP_SIZE: usize = 4;

/// The chaos suite's all-transient schedule.
fn transient_chaos(seed: u64) -> FaultConfig {
    FaultConfig {
        seed,
        transfer_corruption_rate: 0.08,
        kernel_fault_rate: 0.08,
        stall_rate: 0.04,
        oom_rate: 0.0,
        ..FaultConfig::default()
    }
}

/// One observed chaotic gridding pass → (metrics JSON, normalized trace).
fn observed_chaos_run(seed: u64) -> (String, Vec<String>) {
    let case = &standard_cases().expect("standard cases build")[2]; // ragged-tails: cheapest case
    let ds = case.dataset();
    let mut proxy = Proxy::new(Backend::GpuPascal, case.obs.clone())
        .unwrap()
        .with_faults(transient_chaos(seed));
    proxy.work_group_size = WORK_GROUP_SIZE;
    let plan = proxy.plan(&ds.uvw).unwrap();
    let (_, report, trace) = proxy
        .grid_observed(&plan, &ds.uvw, &ds.visibilities, &ds.aterms)
        .unwrap();
    let metrics = report.metrics.expect("observed run must attach metrics");
    (metrics.to_json(), idg_obs::normalized_events(&trace))
}

#[test]
fn same_seed_chaos_runs_are_observationally_deterministic() {
    for seed in [11, 97] {
        let (metrics_a, events_a) = observed_chaos_run(seed);
        let (metrics_b, events_b) = observed_chaos_run(seed);
        assert_eq!(
            metrics_a, metrics_b,
            "seed {seed}: metrics snapshots must be byte-identical"
        );
        assert_eq!(
            events_a, events_b,
            "seed {seed}: normalized trace event sequences must match"
        );
        assert!(!events_a.is_empty(), "seed {seed}: trace must not be empty");
    }
}

/// One observed fleet gridding pass with a chaotic lemon member →
/// (metrics JSON, normalized trace).
fn observed_fleet_run(seed: u64) -> (String, Vec<String>) {
    let case = &standard_cases().expect("standard cases build")[2];
    let ds = case.dataset();
    let mut proxy = Proxy::new(Backend::GpuPascal, case.obs.clone()).unwrap();
    proxy.work_group_size = 1;
    let proxy = proxy.with_fleet_config(FleetConfig {
        nr_devices: 4,
        member_faults: vec![(
            1,
            FaultConfig {
                seed,
                transfer_corruption_rate: 0.25,
                kernel_fault_rate: 0.2,
                stall_rate: 0.1,
                ..FaultConfig::default()
            },
        )],
        breaker: Some(BreakerConfig {
            window: 4,
            trip_unhealthy: 2,
            cooldown_seconds: 0.5,
            half_open_probes: 2,
        }),
    });
    let plan = proxy.plan(&ds.uvw).unwrap();
    let (_, report, trace) = proxy
        .grid_observed(&plan, &ds.uvw, &ds.visibilities, &ds.aterms)
        .unwrap();
    let metrics = report.metrics.expect("observed run must attach metrics");
    (metrics.to_json(), idg_obs::normalized_events(&trace))
}

#[test]
fn same_seed_fleet_runs_are_observationally_deterministic() {
    // The fleet adds dispatch, breaker state machines and per-device
    // span replay on top of the single-device model; none of it may
    // introduce nondeterminism.
    for seed in [2, 8] {
        let (metrics_a, events_a) = observed_fleet_run(seed);
        let (metrics_b, events_b) = observed_fleet_run(seed);
        assert_eq!(
            metrics_a, metrics_b,
            "seed {seed}: fleet metrics snapshots must be byte-identical"
        );
        assert_eq!(
            events_a, events_b,
            "seed {seed}: fleet normalized trace event sequences must match"
        );
        assert!(
            metrics_a.contains("\"breaker_trips\""),
            "fleet counters must serialize"
        );
    }
}

/// One observed *streamed* fleet gridding pass → metrics JSON only.
///
/// Unlike the one-shot runs above, the trace event sequence is *not*
/// compared: which worker thread claims which chunk is a legitimate
/// scheduling race, so the wall-span interleaving may differ between
/// same-seed runs. The counter registers (chunk/backpressure counters,
/// retries, modeled numbers) are deterministic by construction and
/// must still snapshot byte-identically.
fn observed_streamed_run(seed: u64) -> String {
    let case = &standard_cases().expect("standard cases build")[2];
    let ds = case.dataset();
    let mut proxy = Proxy::new(Backend::GpuPascal, case.obs.clone()).unwrap();
    proxy.work_group_size = 1;
    let proxy = proxy.with_fleet_config(FleetConfig {
        nr_devices: 3,
        member_faults: vec![(
            1,
            FaultConfig {
                seed,
                transfer_corruption_rate: 0.45,
                kernel_fault_rate: 0.35,
                stall_rate: 0.25,
                ..FaultConfig::default()
            },
        )],
        breaker: None,
    });
    let config = idg::StreamConfig::new(
        idg::stream::ChunkPolicy::by_timesteps(case.obs.aterm_interval),
        2,
        2,
    );
    let (_, report, _) = proxy
        .grid_streamed_observed(&config, &ds.uvw, &ds.visibilities, &ds.aterms)
        .unwrap();
    let metrics = report.metrics.expect("observed run must attach metrics");
    metrics.to_json()
}

#[test]
fn same_seed_streamed_runs_have_byte_identical_metrics() {
    for seed in [4242, 17] {
        let metrics_a = observed_streamed_run(seed);
        let metrics_b = observed_streamed_run(seed);
        assert_eq!(
            metrics_a, metrics_b,
            "seed {seed}: streamed metrics snapshots must be byte-identical"
        );
        assert!(
            metrics_a.contains("\"chunks_ingested\""),
            "streaming counters must serialize"
        );
        assert!(metrics_a.contains("\"backpressure_waits\""));
    }
}

/// One observed *streamed degrid* fleet pass → metrics JSON only,
/// under the same lemon-fleet fault schedule as the gridding twin.
/// Trace interleaving is again a legitimate scheduling race; the
/// counter registers must still snapshot byte-identically.
fn observed_streamed_degrid_run(seed: u64) -> String {
    let case = &standard_cases().expect("standard cases build")[2];
    let ds = case.dataset();
    // model grid from a clean one-shot pass; the chaos is degrid-side
    let clean = Proxy::new(Backend::GpuPascal, case.obs.clone()).unwrap();
    let plan = clean.plan(&ds.uvw).unwrap();
    let (model, _) = clean
        .grid(&plan, &ds.uvw, &ds.visibilities, &ds.aterms)
        .unwrap();

    let mut proxy = Proxy::new(Backend::GpuPascal, case.obs.clone()).unwrap();
    proxy.work_group_size = 1;
    let proxy = proxy.with_fleet_config(FleetConfig {
        nr_devices: 3,
        member_faults: vec![(
            1,
            FaultConfig {
                seed,
                transfer_corruption_rate: 0.45,
                kernel_fault_rate: 0.35,
                stall_rate: 0.25,
                ..FaultConfig::default()
            },
        )],
        breaker: None,
    });
    let config = idg::StreamConfig::new(
        idg::stream::ChunkPolicy::by_timesteps(case.obs.aterm_interval),
        2,
        2,
    );
    let (_, report, _) = proxy
        .degrid_streamed_observed(&config, &model, &ds.uvw, &ds.aterms)
        .unwrap();
    let metrics = report.metrics.expect("observed run must attach metrics");
    metrics.to_json()
}

#[test]
fn same_seed_streamed_degrid_runs_have_byte_identical_metrics() {
    for seed in [4242, 17] {
        let metrics_a = observed_streamed_degrid_run(seed);
        let metrics_b = observed_streamed_degrid_run(seed);
        assert_eq!(
            metrics_a, metrics_b,
            "seed {seed}: streamed degrid metrics snapshots must be byte-identical"
        );
        assert!(
            metrics_a.contains("\"chunks_ingested\""),
            "streaming counters must serialize"
        );
        assert!(metrics_a.contains("\"backpressure_waits\""));
    }
}

#[test]
fn streamed_degrid_entry_points_reject_degenerate_parameters_typed() {
    // zero chunk bounds, zero workers and a zero admission window must
    // all surface as typed `InvalidParameter` errors — not panics, not
    // silently-empty streams — on both degrid entry points
    use idg::stream::ChunkPolicy;
    use idg::types::IdgError;
    use idg::StreamConfig;

    let case = &standard_cases().expect("standard cases build")[2];
    let ds = case.dataset();
    let proxy = Proxy::new(Backend::CpuOptimized, case.obs.clone()).unwrap();
    let plan = proxy.plan(&ds.uvw).unwrap();
    let (model, _) = proxy
        .grid(&plan, &ds.uvw, &ds.visibilities, &ds.aterms)
        .unwrap();

    let bad_configs = [
        (
            "zero-timestep chunks",
            StreamConfig::new(ChunkPolicy::by_timesteps(0), 2, 2),
        ),
        (
            "zero-visibility chunks",
            StreamConfig::new(ChunkPolicy::by_visibilities(0), 2, 2),
        ),
        (
            "zero workers",
            StreamConfig::new(ChunkPolicy::by_timesteps(8), 0, 2),
        ),
        (
            "zero window",
            StreamConfig::new(ChunkPolicy::by_timesteps(8), 2, 0),
        ),
    ];
    for (what, config) in bad_configs {
        let err = proxy
            .degrid_streamed(&config, &model, &ds.uvw, &ds.aterms)
            .expect_err(what);
        assert!(
            matches!(err, IdgError::InvalidParameter(_)),
            "{what}: degrid_streamed must reject with InvalidParameter, got {err:?}"
        );
        let err = proxy
            .degrid_streamed_observed(&config, &model, &ds.uvw, &ds.aterms)
            .expect_err(what);
        assert!(
            matches!(err, IdgError::InvalidParameter(_)),
            "{what}: degrid_streamed_observed must reject with InvalidParameter, got {err:?}"
        );
    }
}

#[test]
fn different_seeds_produce_observably_different_schedules() {
    // sanity for the test above: if the injector ignored the seed, the
    // determinism assertions would pass vacuously
    let (_, events_a) = observed_chaos_run(11);
    let (_, events_b) = observed_chaos_run(97);
    assert_ne!(
        events_a, events_b,
        "fault schedules must depend on the seed"
    );
}
