//! Adjoint-identity oracle between gridding and degridding.
//!
//! Van der Tol et al. define the degridder as the adjoint of the
//! gridder over the same subgrid decomposition. In this codebase the
//! scaling convention places the 1/Ñ² FFT normalization (Ñ = subgrid
//! size) in the adder's forward subgrid FFT and leaves the splitter's
//! inverse subgrid FFT unnormalized; since an unnormalized inverse DFT
//! is exactly the conjugate transpose of an unnormalized forward DFT,
//! the Ñ² factors cancel and the operators are an exact adjoint pair,
//! `Degrid = Gridᴴ`. The dot-product identity therefore reads
//!
//! ```text
//! ⟨Grid(v), g⟩  =  ⟨v, Degrid(g)⟩
//! ```
//!
//! for *any* visibility vector `v` and model grid `g`. This is an
//! oracle class the per-stage RMS checks cannot provide: it couples
//! the two pipeline directions against each other, so a scaling,
//! conjugation or indexing bug on either side breaks the identity
//! even when each side is self-consistently wrong.
//!
//! The suite verifies the identity on the standard conformance cases
//! and on seeded random observation shapes, through both the one-shot
//! entry points and the streamed duplex pipeline (CPU reference
//! back-end — the f64 gold standard the other back-ends are budgeted
//! against), with a per-case relative tolerance budget covering f32
//! kernel rounding.

use idg::telescope::{Dataset, GaussianBeam, Layout, SkyModel};
use idg::types::{Observation, Visibility};
use idg::{Backend, ChunkPolicy, Grid, Proxy, StreamConfig};
use idg_conformance::standard_cases;

/// Relative tolerance of the identity: both sides are f64-accumulated
/// dot products of f32 kernel outputs, so the defect is bounded by
/// f32 rounding amplified by cancellation in the sums.
const ADJOINT_BUDGET: f64 = 5e-3;

/// ⟨a, b⟩ = Σ aᵢ · conj(bᵢ) over all grid samples, in f64.
fn grid_inner(a: &Grid<f32>, b: &Grid<f32>) -> (f64, f64) {
    let (mut re, mut im) = (0.0f64, 0.0f64);
    for (x, y) in a.as_slice().iter().zip(b.as_slice()) {
        let (xr, xi) = (x.re as f64, x.im as f64);
        let (yr, yi) = (y.re as f64, y.im as f64);
        re += xr * yr + xi * yi;
        im += xi * yr - xr * yi;
    }
    (re, im)
}

/// ⟨a, b⟩ = Σ aᵢ · conj(bᵢ) over all visibilities × 4 pols, in f64.
fn vis_inner(a: &[Visibility<f32>], b: &[Visibility<f32>]) -> (f64, f64) {
    let (mut re, mut im) = (0.0f64, 0.0f64);
    for (x, y) in a.iter().zip(b) {
        for (p, q) in x.pols.iter().zip(y.pols.iter()) {
            let (xr, xi) = (p.re as f64, p.im as f64);
            let (yr, yi) = (q.re as f64, q.im as f64);
            re += xr * yr + xi * yi;
            im += xi * yr - xr * yi;
        }
    }
    (re, im)
}

/// Check `⟨Grid(v), g⟩ ≈ ⟨v, Degrid(g)⟩` for one dataset, where
/// `grid_v = Grid(v)` doubles as the model grid `g` (any finite grid
/// works; this one is deterministic and carries energy on exactly the
/// uv cells the plan covers).
fn assert_adjoint_identity(name: &str, ds: &Dataset, streamed: Option<&StreamConfig>) {
    let proxy = Proxy::new(Backend::CpuReference, ds.obs.clone()).expect("proxy builds");
    let plan = proxy.plan(&ds.uvw).expect("plan builds");

    let (grid_v, predicted) = match streamed {
        None => {
            let (grid_v, _) = proxy
                .grid(&plan, &ds.uvw, &ds.visibilities, &ds.aterms)
                .expect("one-shot gridding runs");
            let (predicted, _) = proxy
                .degrid(&plan, &grid_v, &ds.uvw, &ds.aterms)
                .expect("one-shot degridding runs");
            (grid_v, predicted)
        }
        Some(config) => {
            let (grid_v, _) = proxy
                .grid_streamed(config, &ds.uvw, &ds.visibilities, &ds.aterms)
                .expect("streamed gridding runs");
            let (predicted, report) = proxy
                .degrid_streamed(config, &grid_v, &ds.uvw, &ds.aterms)
                .expect("streamed degridding runs");
            assert_eq!(
                report.stream.expect("stream stats").failed_chunks,
                0,
                "{name}: streamed degrid must complete"
            );
            (grid_v, predicted)
        }
    };

    // lhs = ⟨Grid(v), g⟩ with g = grid_v; rhs = ⟨v, Degrid(g)⟩
    let (lhs_re, lhs_im) = grid_inner(&grid_v, &grid_v);
    let (rhs_re, rhs_im) = vis_inner(&ds.visibilities, &predicted);

    let scale = lhs_re.hypot(lhs_im);
    assert!(
        scale > 0.0,
        "{name}: degenerate case — the gridded energy is zero"
    );
    let defect = (lhs_re - rhs_re).hypot(lhs_im - rhs_im) / scale;
    let mode = if streamed.is_some() {
        "streamed"
    } else {
        "one-shot"
    };
    println!(
        "{name:>14} / {mode:<8} ⟨G(v),g⟩ = {lhs_re:.6e}{lhs_im:+.6e}i   \
         ⟨v,G†(g)⟩ = {rhs_re:.6e}{rhs_im:+.6e}i   defect {defect:.3e}"
    );
    assert!(
        defect <= ADJOINT_BUDGET,
        "{name} ({mode}): adjoint identity defect {defect:.3e} exceeds budget {ADJOINT_BUDGET:.1e}"
    );
}

/// Seeded random observation shapes beyond the standard cases: the
/// shape parameters are drawn from a fixed-seed LCG, so the "random"
/// coverage is reproducible run to run.
fn random_shape_datasets() -> Vec<(String, Dataset)> {
    let mut state = 0x1DC0FFEE_u64;
    let mut next = |m: u64| {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (state >> 33) % m
    };
    let mut out = Vec::new();
    for shape in 0..3 {
        let stations = 4 + next(3) as usize;
        let timesteps = 12 + 4 * next(6) as usize;
        let channels = 2 + next(3) as usize;
        let subgrid = [12, 16, 20][next(3) as usize];
        let kernel = [5, 7][next(2) as usize];
        let aterm = [4, 8, 16][next(3) as usize];
        let obs = Observation::builder()
            .stations(stations)
            .timesteps(timesteps)
            .channels(channels, 150e6, 2e6)
            .grid_size(128)
            .subgrid_size(subgrid)
            .kernel_size(kernel)
            .aterm_interval(aterm)
            .image_size(0.04)
            .build()
            .expect("random shape builds");
        let layout = Layout::uniform(stations, 700.0 + 100.0 * next(4) as f64, 41 + shape);
        let sky = SkyModel::random(&obs, 3 + next(3) as usize, 0.7, 43 + shape);
        let beam = GaussianBeam::new(&obs, 0.7, 47 + shape);
        let ds = Dataset::simulate(obs, &layout, sky, &beam);
        out.push((
            format!("random-{shape} ({stations}st/{timesteps}ts/{channels}ch/sub{subgrid})"),
            ds,
        ));
    }
    out
}

#[test]
fn adjoint_identity_holds_on_every_standard_case() {
    for case in standard_cases().expect("standard cases build") {
        let ds = case.dataset();
        assert_adjoint_identity(case.name, &ds, None);
    }
}

#[test]
fn adjoint_identity_holds_on_streamed_passes() {
    for case in standard_cases().expect("standard cases build") {
        let ds = case.dataset();
        // two policies: per-interval chunks and a two-interval stride
        for policy in [
            ChunkPolicy::by_timesteps(ds.obs.aterm_interval),
            ChunkPolicy::by_timesteps(2 * ds.obs.aterm_interval),
        ] {
            let config = StreamConfig::new(policy, 2, 2);
            assert_adjoint_identity(case.name, &ds, Some(&config));
        }
    }
}

#[test]
fn adjoint_identity_holds_on_random_observation_shapes() {
    for (name, ds) in random_shape_datasets() {
        assert_adjoint_identity(&name, &ds, None);
        let config = StreamConfig::new(ChunkPolicy::by_timesteps(ds.obs.aterm_interval), 3, 2);
        assert_adjoint_identity(&name, &ds, Some(&config));
    }
}
