//! Soak test for the streaming scheduler: many small chunks pushed
//! through a narrow admission window over a fault-injecting fleet.
//!
//! What this pins, beyond the per-policy equivalence suite:
//!
//! - **liveness** — the producer/worker condvar protocol drains a long
//!   stream without deadlock (the run executes on a helper thread so a
//!   hang fails the test in bounded time instead of wedging the suite);
//! - **bounded queue** — the admission window is respected at its
//!   exact cap (`inflight_max == max_inflight`), with the scheduler
//!   genuinely concurrent (`inflight_max >= 2`);
//! - **backpressure** — every admission beyond the window registers
//!   (`backpressure_waits == nr_chunks − max_inflight`);
//! - **exactness under sustained faults** — dozens of lemon-member
//!   retries later, the streamed grid is still bit-identical to the
//!   clean one-shot grid and nothing leaked to the CPU fallback.

use idg::gpusim::FaultConfig;
use idg::stream::ChunkPolicy;
use idg::types::{Grid, Observation};
use idg::{Backend, FleetConfig, Proxy, StreamConfig};
use idg_telescope::{Dataset, GaussianBeam, Layout, SkyModel};
use std::sync::mpsc;
use std::time::Duration;

/// A soak observation: `nr_timesteps` with a 2-step A-term interval,
/// so a per-interval policy yields `nr_timesteps / 2` small chunks.
fn soak_dataset(nr_timesteps: usize) -> Dataset {
    let obs = Observation::builder()
        .stations(5)
        .timesteps(nr_timesteps)
        .channels(2, 150e6, 2e6)
        .grid_size(128)
        .subgrid_size(16)
        .kernel_size(5)
        .aterm_interval(2)
        .image_size(0.05)
        .build()
        .unwrap();
    let layout = Layout::uniform(5, 700.0, 211);
    let sky = SkyModel::random(&obs, 3, 0.6, 223);
    let beam = GaussianBeam::new(&obs, 0.8, 227);
    Dataset::simulate(obs, &layout, sky, &beam)
}

fn lemon_fleet_proxy(obs: Observation) -> Proxy {
    let mut proxy = Proxy::new(Backend::GpuPascal, obs).unwrap();
    proxy.work_group_size = 1;
    proxy.with_fleet_config(FleetConfig {
        nr_devices: 3,
        member_faults: vec![(
            1,
            FaultConfig {
                seed: 9090,
                transfer_corruption_rate: 0.3,
                kernel_fault_rate: 0.25,
                stall_rate: 0.15,
                ..FaultConfig::default()
            },
        )],
        breaker: None,
    })
}

fn assert_bit_identical(reference: &Grid<f32>, streamed: &Grid<f32>) {
    assert_eq!(reference.size(), streamed.size());
    for (i, (a, b)) in reference
        .as_slice()
        .iter()
        .zip(streamed.as_slice())
        .enumerate()
    {
        assert!(
            a.re.to_bits() == b.re.to_bits() && a.im.to_bits() == b.im.to_bits(),
            "soak grid pixel {i} differs: one-shot {a:?} vs streamed {b:?}"
        );
    }
}

/// One soak iteration; runs on a helper thread under `deadline` so a
/// scheduler deadlock fails loudly instead of hanging the suite.
fn soak_once(nr_timesteps: usize, deadline: Duration) {
    let (tx, rx) = mpsc::channel();
    let handle = std::thread::spawn(move || {
        let ds = soak_dataset(nr_timesteps);
        let clean = Proxy::new(Backend::GpuPascal, ds.obs.clone()).unwrap();
        let plan = clean.plan(&ds.uvw).unwrap();
        let (reference, _) = clean
            .grid(&plan, &ds.uvw, &ds.visibilities, &ds.aterms)
            .unwrap();

        let proxy = lemon_fleet_proxy(ds.obs.clone());
        let config = StreamConfig::new(ChunkPolicy::by_timesteps(2), 2, 2);
        let (streamed, report) = proxy
            .grid_streamed(&config, &ds.uvw, &ds.visibilities, &ds.aterms)
            .unwrap();

        assert_bit_identical(&reference, &streamed);
        assert!(
            report.fallback_jobs.is_empty(),
            "soak faults are all transient; none may reach the CPU fallback"
        );
        let stats = report.stream.expect("streamed pass carries stream stats");
        assert_eq!(stats.nr_chunks, nr_timesteps / 2);
        assert_eq!(stats.completed_chunks, stats.nr_chunks);
        assert_eq!(stats.failed_chunks, 0);
        // the queue stays bounded at the window, and the scheduler
        // really overlaps passes (the >= 2 concurrency acceptance bar)
        assert_eq!(stats.inflight_max, 2, "admission window must cap inflight");
        assert!(
            stats.inflight_max >= 2,
            "soak must sustain concurrent passes"
        );
        assert_eq!(
            stats.backpressure_waits,
            (stats.nr_chunks - 2) as u64,
            "every admission beyond the window must register a wait"
        );
        assert!(stats.backpressure_waits > 0);
        let _ = tx.send(());
    });
    rx.recv_timeout(deadline)
        .expect("stream soak deadlocked: scheduler failed to drain within the deadline");
    handle.join().expect("soak thread panicked");
}

/// Duplex twin of [`soak_once`]: the same many-small-chunk stream
/// pushed through the splitter-side pipeline. The streamed predicted
/// visibilities must stay bit-identical to the clean one-shot degrid
/// under sustained lemon-member faults.
fn soak_degrid_once(nr_timesteps: usize, deadline: Duration) {
    let (tx, rx) = mpsc::channel();
    let handle = std::thread::spawn(move || {
        let ds = soak_dataset(nr_timesteps);
        let clean = Proxy::new(Backend::GpuPascal, ds.obs.clone()).unwrap();
        let plan = clean.plan(&ds.uvw).unwrap();
        let (model, _) = clean
            .grid(&plan, &ds.uvw, &ds.visibilities, &ds.aterms)
            .unwrap();
        let (reference, _) = clean.degrid(&plan, &model, &ds.uvw, &ds.aterms).unwrap();

        let proxy = lemon_fleet_proxy(ds.obs.clone());
        let config = StreamConfig::new(ChunkPolicy::by_timesteps(2), 2, 2);
        let (streamed, report) = proxy
            .degrid_streamed(&config, &model, &ds.uvw, &ds.aterms)
            .unwrap();

        assert_eq!(reference.len(), streamed.len());
        for (i, (a, b)) in reference.iter().zip(&streamed).enumerate() {
            for (p, (x, y)) in a.pols.iter().zip(b.pols.iter()).enumerate() {
                assert!(
                    x.re.to_bits() == y.re.to_bits() && x.im.to_bits() == y.im.to_bits(),
                    "soak visibility {i} pol {p} differs: one-shot {x:?} vs streamed {y:?}"
                );
            }
        }
        assert!(
            report.fallback_jobs.is_empty(),
            "soak faults are all transient; none may reach the CPU fallback"
        );
        let stats = report.stream.expect("streamed pass carries stream stats");
        assert_eq!(stats.direction, idg::StreamDirection::Degridding);
        assert_eq!(stats.nr_chunks, nr_timesteps / 2);
        assert_eq!(stats.completed_chunks, stats.nr_chunks);
        assert_eq!(stats.failed_chunks, 0);
        assert_eq!(stats.inflight_max, 2, "admission window must cap inflight");
        assert_eq!(
            stats.backpressure_waits,
            (stats.nr_chunks - 2) as u64,
            "every admission beyond the window must register a wait"
        );
        let _ = tx.send(());
    });
    rx.recv_timeout(deadline)
        .expect("degrid stream soak deadlocked: scheduler failed to drain within the deadline");
    handle.join().expect("soak thread panicked");
}

#[test]
fn stream_soak_many_small_chunks_over_a_lemon_fleet() {
    // 32 chunks through a 2-slot window on 2 workers
    soak_once(64, Duration::from_secs(120));
}

#[test]
fn stream_soak_degrid_many_small_chunks_over_a_lemon_fleet() {
    // the duplex direction: 32 chunks of predicted visibilities
    // through the same 2-slot window on 2 workers
    soak_degrid_once(64, Duration::from_secs(120));
}

#[test]
#[ignore = "long soak; run explicitly (CI stream-soak job) with --ignored"]
fn stream_soak_long_sustained_ingestion() {
    // 128 chunks per iteration, three iterations: enough churn to
    // surface rare lost-notify or slot-reuse bugs that a single short
    // pass can miss
    for _ in 0..3 {
        soak_once(256, Duration::from_secs(300));
    }
}
