//! The cross-backend conformance suite.
//!
//! Every back-end runs gridding and degridding on each standard case;
//! every pipeline stage is held to its error budget against the scalar
//! double-precision reference. Run with `--nocapture` to see the full
//! per-stage error table.

use idg::Backend;
use idg_conformance::{assert_conformance, run_case, standard_cases};

#[test]
fn all_backends_conform_on_all_standard_cases() {
    let reports = assert_conformance().expect("conformance pipeline runs");
    // 3 cases × 4 back-ends × 6 stages
    assert_eq!(
        reports.len(),
        standard_cases().expect("standard cases build").len() * Backend::all().len()
    );
    for report in &reports {
        assert_eq!(report.checks.len(), 6);
        print!("{}", report.summary());
    }
}

#[test]
fn reference_backend_is_bit_identical_to_itself() {
    // Pins harness determinism AND the determinism of the row-parallel
    // adder/splitter: any nondeterministic reduction order would break
    // the zero budget.
    let cases = standard_cases().expect("standard cases build");
    let reports = run_case(&cases[0]).expect("case runs");
    let reference = &reports[0];
    assert_eq!(reference.backend, Backend::CpuReference);
    for check in &reference.checks {
        assert_eq!(
            (check.error.rms, check.error.max),
            (0.0, 0.0),
            "stage {} not deterministic",
            check.stage
        );
    }
}

#[test]
fn single_precision_backends_are_close_but_not_identical() {
    // Guards against a harness bug that silently compares the reference
    // against itself for every backend: the optimized/GPU paths must
    // show a nonzero (but budgeted) error.
    let cases = standard_cases().expect("standard cases build");
    let reports = run_case(&cases[0]).expect("case runs");
    for report in &reports {
        if report.backend == Backend::CpuReference {
            continue;
        }
        assert!(report.violations().is_empty(), "{}", report.summary());
        let gridder = &report.checks[0];
        assert!(
            gridder.error.rms > 0.0,
            "{:?} gridder suspiciously bit-identical to the f64 reference",
            report.backend
        );
    }
}
