//! Chaos suite: the fault-injecting execution layer under randomized
//! and adversarial fault schedules.
//!
//! Every seeded conformance observation is driven through GPU passes
//! with injected device faults. The contract under test:
//!
//! * transient faults (transfer corruption, kernel faults, stalls)
//!   retry to **bit-identical** results — the recovery cost appears in
//!   the report (retries, backoff, faulted timeline ops), never in the
//!   numbers;
//! * persistent faults (device OOM, exhausted retries) degrade
//!   gracefully: the failed jobs re-execute on the CPU reference
//!   kernels, the merged result stays within the cross-backend
//!   equivalence envelope, and the fallback is flagged in the report;
//! * with the fallback disabled, persistent faults surface as
//!   **typed** classified errors;
//! * no schedule — however hostile — panics.

use idg::gpusim::{FaultConfig, RetryPolicy};
use idg::types::Grid;
use idg::{Backend, IdgError, Proxy, Visibility};
use idg_conformance::standard_cases;

/// Small work groups so every case schedules enough jobs for the
/// injector to have interesting points to hit.
const WORK_GROUP_SIZE: usize = 4;

fn proxy(backend: Backend, case: &idg_conformance::Case) -> Proxy {
    let mut p = Proxy::new(backend, case.obs.clone()).unwrap();
    p.work_group_size = WORK_GROUP_SIZE;
    p
}

/// Relative max-abs distance, normalized by the reference peak — the
/// same envelope the cross-backend equivalence tests use.
fn grids_close(a: &Grid<f32>, b: &Grid<f32>, tol: f32) {
    let scale = b.as_slice().iter().map(|c| c.abs()).fold(1e-9f32, f32::max);
    for (x, y) in a.as_slice().iter().zip(b.as_slice()) {
        assert!((*x - *y).abs() / scale < tol, "{x} vs {y}");
    }
}

fn vis_close(a: &[Visibility<f32>], b: &[Visibility<f32>], tol: f32) {
    let scale = b
        .iter()
        .flat_map(|v| v.pols.iter())
        .map(|c| c.abs())
        .fold(1e-9f32, f32::max);
    for (x, y) in a.iter().zip(b) {
        for p in 0..4 {
            assert!((x.pols[p] - y.pols[p]).abs() / scale < tol);
        }
    }
}

/// A moderate all-transient schedule: no OOM, so every fault class is
/// retryable and recovery must be exact whenever no job exhausts its
/// attempts.
fn transient_chaos(seed: u64) -> FaultConfig {
    FaultConfig {
        seed,
        transfer_corruption_rate: 0.08,
        kernel_fault_rate: 0.08,
        stall_rate: 0.04,
        oom_rate: 0.0,
        ..FaultConfig::default()
    }
}

#[test]
fn transient_chaos_recovers_every_standard_case() {
    // alternate the device model per case to cover both architectures
    let backends = [Backend::GpuPascal, Backend::GpuFiji, Backend::GpuPascal];
    for (case, backend) in standard_cases()
        .expect("standard cases build")
        .iter()
        .zip(backends)
    {
        let ds = case.dataset();
        let gold_proxy = proxy(backend, case);
        let plan = gold_proxy.plan(&ds.uvw).unwrap();
        let (gold, gold_report) = gold_proxy
            .grid(&plan, &ds.uvw, &ds.visibilities, &ds.aterms)
            .unwrap();
        assert!(gold_report.fallback_jobs.is_empty());

        for seed in [11, 22, 33] {
            let chaotic = proxy(backend, case).with_faults(transient_chaos(seed));
            let (grid, report) = chaotic
                .grid(&plan, &ds.uvw, &ds.visibilities, &ds.aterms)
                .unwrap();

            if report.fallback_jobs.is_empty() {
                // all-transient recovery: the kernels are deterministic,
                // so the retried grid is bit-identical to the gold run
                assert_eq!(
                    grid.as_slice(),
                    gold.as_slice(),
                    "{} seed {seed}: recovery must be exact",
                    case.name
                );
            } else {
                // a job exhausted its retries and re-executed on the
                // CPU: flagged, and within the equivalence envelope
                grids_close(&grid, &gold, 3e-3);
            }
            if report.nr_retries > 0 {
                assert!(report.backoff_seconds > 0.0, "backoff must be modeled");
                assert!(
                    report.total_seconds >= gold_report.total_seconds,
                    "recovery cannot be free"
                );
            }
        }
    }
}

#[test]
fn transient_chaos_recovers_degridding() {
    let case = &standard_cases().expect("standard cases build")[0];
    let ds = case.dataset();
    let gold_proxy = proxy(Backend::GpuPascal, case);
    let plan = gold_proxy.plan(&ds.uvw).unwrap();
    let (model, _) = gold_proxy
        .grid(&plan, &ds.uvw, &ds.visibilities, &ds.aterms)
        .unwrap();
    let (gold, _) = gold_proxy
        .degrid(&plan, &model, &ds.uvw, &ds.aterms)
        .unwrap();

    for seed in [5, 6] {
        let chaotic = proxy(Backend::GpuPascal, case).with_faults(transient_chaos(seed));
        let (vis, report) = chaotic.degrid(&plan, &model, &ds.uvw, &ds.aterms).unwrap();
        if report.fallback_jobs.is_empty() {
            assert_eq!(vis, gold, "seed {seed}: degrid recovery must be exact");
        } else {
            vis_close(&vis, &gold, 3e-3);
        }
    }
}

#[test]
fn oom_chaos_degrades_gracefully_with_a_flagged_fallback() {
    let case = &standard_cases().expect("standard cases build")[2]; // ragged-tails: cheapest case
    let ds = case.dataset();
    let gold_proxy = proxy(Backend::GpuFiji, case);
    let plan = gold_proxy.plan(&ds.uvw).unwrap();
    let (gold, _) = gold_proxy
        .grid(&plan, &ds.uvw, &ds.visibilities, &ds.aterms)
        .unwrap();

    let mut saw_fallback = false;
    for seed in [1, 2, 3, 4] {
        let chaotic = proxy(Backend::GpuFiji, case).with_faults(FaultConfig {
            seed,
            oom_rate: 0.4,
            ..FaultConfig::default()
        });
        let (grid, report) = chaotic
            .grid(&plan, &ds.uvw, &ds.visibilities, &ds.aterms)
            .unwrap();
        if !report.fallback_jobs.is_empty() {
            saw_fallback = true;
            assert!(report
                .fallback_jobs
                .iter()
                .all(|f| !f.error.is_transient() && f.attempts == 1));
            assert!(report.to_string().contains("re-executed on the CPU"));
        }
        grids_close(&grid, &gold, 3e-3);
    }
    assert!(saw_fallback, "oom_rate 0.4 over 4 seeds must hit some job");
}

#[test]
fn disabled_fallback_turns_persistent_faults_into_typed_errors() {
    let case = &standard_cases().expect("standard cases build")[2];
    let ds = case.dataset();

    // every job's kernel faults on every attempt and nothing retries:
    // with the fallback off, the pass must fail with the classified
    // error of the first failed job — not a panic, not a zero grid
    let mut p = proxy(Backend::GpuPascal, case).with_faults(FaultConfig {
        seed: 9,
        kernel_fault_rate: 1.0,
        ..FaultConfig::default()
    });
    p.retry_policy = RetryPolicy::no_retries();
    p.cpu_fallback = false;
    let plan = p.plan(&ds.uvw).unwrap();
    let err = p
        .grid(&plan, &ds.uvw, &ds.visibilities, &ds.aterms)
        .unwrap_err();
    assert!(matches!(err, IdgError::KernelFault { .. }), "{err:?}");
    assert!(!err.is_transient() || err.job().is_some());
}

#[test]
fn total_kernel_failure_still_produces_the_full_grid_via_fallback() {
    let case = &standard_cases().expect("standard cases build")[2];
    let ds = case.dataset();
    let gold = {
        let reference = Proxy::new(Backend::CpuReference, case.obs.clone()).unwrap();
        let plan = reference.plan(&ds.uvw).unwrap();
        reference
            .grid(&plan, &ds.uvw, &ds.visibilities, &ds.aterms)
            .unwrap()
            .0
    };

    let mut p = proxy(Backend::GpuPascal, case).with_faults(FaultConfig {
        seed: 13,
        kernel_fault_rate: 1.0,
        ..FaultConfig::default()
    });
    p.retry_policy = RetryPolicy::no_retries();
    let plan = p.plan(&ds.uvw).unwrap();
    let (grid, report) = p
        .grid(&plan, &ds.uvw, &ds.visibilities, &ds.aterms)
        .unwrap();

    // every device job failed, so every job re-executed on the CPU
    // reference kernels — the result *is* the reference grid
    let nr_jobs = plan.items.chunks(WORK_GROUP_SIZE).count();
    assert_eq!(report.fallback_jobs.len(), nr_jobs);
    assert_eq!(grid.as_slice(), gold.as_slice());
}
