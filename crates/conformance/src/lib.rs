//! # idg-conformance — cross-backend accuracy conformance
//!
//! Every back-end of [`idg::Backend::all`] must approximate the same
//! operator. This crate pins that property *stage by stage*: it runs
//! gridding and degridding through each back-end via
//! [`idg::Proxy::grid_stages`]/[`idg::Proxy::degrid_stages`] on
//! deterministic seeded observations and compares every intermediate
//! buffer — gridder subgrids, post-FFT subgrids, the adder's grid, the
//! splitter subgrids, and the degridded visibilities — against the
//! scalar double-precision reference back-end, with explicit RMS and
//! max-error budgets per stage.
//!
//! Comparing stages instead of end products makes a conformance failure
//! *attributable*: a budget violation names the first kernel whose
//! output diverged, not just "the grids differ". The budgets are
//! deliberately asymmetric:
//!
//! * `CpuReference` vs itself must be bit-identical (budget 0) — this
//!   pins determinism of the harness and of the parallel adder;
//! * `CpuOptimized` and the GPU models run single-precision kernels
//!   with batched/approximated sincos, so they get a relative RMS
//!   budget of 1e-5 and a relative max budget of 5e-5 per stage.
//!   Measured errors on the standard cases sit at 4e-7…8e-7 RMS and
//!   up to 2e-6 max (run the conformance test with `--nocapture` for
//!   the full table), so the ceilings carry ≈ 15-25× headroom without
//!   admitting a genuinely broken kernel.
//!
//! Error metrics are *relative*: RMS of the difference over the RMS of
//! the reference stage output, and max-abs of the difference over the
//! max-abs of the reference. A stage whose reference output is
//! identically zero only conforms if the candidate is zero too.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

use idg::telescope::{Dataset, GaussianBeam, IdentityATerm, Layout, SkyModel};
use idg::types::{IdgError, Observation, Visibility};
use idg::{Backend, Cf32, Proxy};

/// Relative error of one candidate buffer against the reference.
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct StageError {
    /// RMS of (candidate − reference), normalized by the reference RMS.
    pub rms: f64,
    /// Max-abs of (candidate − reference), normalized by the reference
    /// max-abs.
    pub max: f64,
}

impl StageError {
    /// Compare two complex buffers element-wise.
    pub fn between(candidate: &[Cf32], reference: &[Cf32]) -> Self {
        assert_eq!(
            candidate.len(),
            reference.len(),
            "stage buffers must have equal shape"
        );
        let mut diff2 = 0.0f64;
        let mut ref2 = 0.0f64;
        let mut dmax = 0.0f64;
        let mut rmax = 0.0f64;
        for (a, b) in candidate.iter().zip(reference) {
            let dre = (a.re - b.re) as f64;
            let dim = (a.im - b.im) as f64;
            let d2 = dre * dre + dim * dim;
            diff2 += d2;
            dmax = dmax.max(d2);
            let b2 = (b.re as f64) * (b.re as f64) + (b.im as f64) * (b.im as f64);
            ref2 += b2;
            rmax = rmax.max(b2);
        }
        if ref2 == 0.0 {
            // reference is identically zero: conforming candidates are too
            let zero = diff2 == 0.0;
            return Self {
                rms: if zero { 0.0 } else { f64::INFINITY },
                max: if zero { 0.0 } else { f64::INFINITY },
            };
        }
        Self {
            rms: (diff2 / ref2).sqrt(),
            max: (dmax / rmax).sqrt(),
        }
    }

    /// Compare visibility buffers (all four polarizations flattened).
    pub fn between_visibilities(
        candidate: &[Visibility<f32>],
        reference: &[Visibility<f32>],
    ) -> Self {
        let flat = |v: &[Visibility<f32>]| -> Vec<Cf32> { v.iter().flat_map(|s| s.pols).collect() };
        Self::between(&flat(candidate), &flat(reference))
    }
}

/// Error budget for one stage.
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct StageBudget {
    /// Ceiling for [`StageError::rms`].
    pub rms: f64,
    /// Ceiling for [`StageError::max`].
    pub max: f64,
}

impl StageBudget {
    /// The per-stage budget of a back-end.
    ///
    /// The reference back-end is compared against itself and must be
    /// bit-identical; every single-precision back-end shares one budget,
    /// so adding a back-end to [`Backend::all`] automatically subjects
    /// it to the same ceilings.
    pub fn for_backend(backend: Backend) -> Self {
        match backend {
            Backend::CpuReference => Self { rms: 0.0, max: 0.0 },
            _ => Self {
                rms: 1e-5,
                max: 5e-5,
            },
        }
    }

    /// Whether `error` fits inside the budget.
    pub fn admits(&self, error: StageError) -> bool {
        error.rms <= self.rms && error.max <= self.max
    }
}

/// The result of checking one pipeline stage of one back-end.
#[derive(Clone, Debug)]
pub struct StageCheck {
    /// Stage name (`gridder`, `subgrid-fft`, `grid`, `splitter`,
    /// `subgrid-ifft`, `visibilities`).
    pub stage: &'static str,
    /// Measured error against the reference.
    pub error: StageError,
    /// Budget the error is held to.
    pub budget: StageBudget,
}

impl StageCheck {
    /// Whether the stage conforms.
    pub fn passed(&self) -> bool {
        self.budget.admits(self.error)
    }
}

/// All stage checks of one back-end on one case.
#[derive(Clone, Debug)]
pub struct BackendReport {
    /// The back-end under test.
    pub backend: Backend,
    /// Case name the report belongs to.
    pub case: &'static str,
    /// One check per pipeline stage, gridding stages first.
    pub checks: Vec<StageCheck>,
}

impl BackendReport {
    /// Failing checks, empty when the back-end conforms.
    pub fn violations(&self) -> Vec<&StageCheck> {
        self.checks.iter().filter(|c| !c.passed()).collect()
    }

    /// Render a one-line-per-stage summary (used in failure messages
    /// and by the conformance test's verbose output).
    pub fn summary(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        for c in &self.checks {
            let _ = writeln!(
                out,
                "{:>14} / {:<12} {:<12} rms {:.3e} (≤ {:.1e})  max {:.3e} (≤ {:.1e})  {}",
                self.case,
                self.backend.label(),
                c.stage,
                c.error.rms,
                c.budget.rms,
                c.error.max,
                c.budget.max,
                if c.passed() { "ok" } else { "VIOLATION" },
            );
        }
        out
    }
}

/// One deterministic seeded observation the suite runs.
pub struct Case {
    /// Short name used in reports.
    pub name: &'static str,
    /// Observation geometry.
    pub obs: Observation,
    /// Station layout seed (`Layout::uniform`).
    pub layout_seed: u64,
    /// Layout radius in meters.
    pub layout_radius: f64,
    /// Sky realization: (number of sources, max flux, seed).
    pub sky: (usize, f64, u64),
    /// Gaussian-beam A-term seed, or `None` for identity A-terms.
    pub beam_seed: Option<u64>,
}

impl Case {
    /// Simulate the case's dataset (deterministic for fixed seeds).
    pub fn dataset(&self) -> Dataset {
        let layout = Layout::uniform(self.obs.nr_stations, self.layout_radius, self.layout_seed);
        let sky = SkyModel::random(&self.obs, self.sky.0, self.sky.1, self.sky.2);
        match self.beam_seed {
            Some(seed) => {
                let beam = GaussianBeam::new(&self.obs, 0.7, seed);
                Dataset::simulate(self.obs.clone(), &layout, sky, &beam)
            }
            None => Dataset::simulate(self.obs.clone(), &layout, sky, &IdentityATerm),
        }
    }
}

/// The standard conformance cases: three observation shapes chosen to
/// exercise different code paths.
///
/// * `nominal` — mid-size observation through a drifting Gaussian beam
///   (A-term sandwich active, several A-term intervals);
/// * `w-stacking` — `w_step > 0`, so the plan splits work items per
///   w-plane and the kernels evaluate per-pixel w-phases;
/// * `ragged-tails` — deliberately awkward sizes: odd time/channel
///   counts and a short A-term interval make every work item's
///   visibility count miss the optimized kernels' `VIS_BATCH` and SIMD
///   `LANES` boundaries, pinning the tail-handling paths.
pub fn standard_cases() -> Result<Vec<Case>, IdgError> {
    let nominal = Observation::builder()
        .stations(6)
        .timesteps(48)
        .channels(4, 150e6, 2e6)
        .grid_size(256)
        .subgrid_size(20)
        .kernel_size(7)
        .aterm_interval(16)
        .image_size(0.05)
        .integration_time(30.0)
        .build()?;

    let mut wstack = Observation::builder()
        .stations(8)
        .timesteps(32)
        .channels(4, 150e6, 2e6)
        .grid_size(256)
        .subgrid_size(24)
        .kernel_size(9)
        .aterm_interval(32)
        .image_size(0.05)
        .build()?;
    wstack.w_step = 30.0;

    let ragged = Observation::builder()
        .stations(4)
        .timesteps(21)
        .channels(3, 150e6, 2e6)
        .grid_size(128)
        .subgrid_size(16)
        .kernel_size(5)
        .aterm_interval(7)
        .image_size(0.04)
        .build()?;

    Ok(vec![
        Case {
            name: "nominal",
            obs: nominal,
            layout_seed: 1101,
            layout_radius: 1200.0,
            sky: (5, 0.8, 1103),
            beam_seed: Some(1107),
        },
        Case {
            name: "w-stacking",
            obs: wstack,
            layout_seed: 2201,
            layout_radius: 1500.0,
            sky: (4, 0.6, 2203),
            beam_seed: None,
        },
        Case {
            name: "ragged-tails",
            obs: ragged,
            layout_seed: 3301,
            layout_radius: 800.0,
            sky: (3, 0.5, 3303),
            beam_seed: Some(3307),
        },
    ])
}

/// Run one case through every back-end and compare each stage against
/// the scalar reference.
///
/// Gridding stages compare each back-end's own pipeline; degridding
/// runs every back-end against the *reference* model grid so the
/// degrid-side comparison is not polluted by grid-side differences.
pub fn run_case(case: &Case) -> Result<Vec<BackendReport>, IdgError> {
    let ds = case.dataset();

    let reference = Proxy::new(Backend::CpuReference, case.obs.clone())?;
    let plan = reference.plan(&ds.uvw)?;
    let ref_grid = reference.grid_stages(&plan, &ds.uvw, &ds.visibilities, &ds.aterms)?;
    let ref_degrid = reference.degrid_stages(&plan, &ref_grid.grid, &ds.uvw, &ds.aterms)?;

    let mut reports = Vec::with_capacity(Backend::all().len());
    for backend in Backend::all() {
        let budget = StageBudget::for_backend(backend);
        let proxy = Proxy::new(backend, case.obs.clone())?;
        let g = proxy.grid_stages(&plan, &ds.uvw, &ds.visibilities, &ds.aterms)?;
        let d = proxy.degrid_stages(&plan, &ref_grid.grid, &ds.uvw, &ds.aterms)?;

        let checks = vec![
            StageCheck {
                stage: "gridder",
                error: StageError::between(
                    g.gridder_subgrids.as_slice(),
                    ref_grid.gridder_subgrids.as_slice(),
                ),
                budget,
            },
            StageCheck {
                stage: "subgrid-fft",
                error: StageError::between(
                    g.fft_subgrids.as_slice(),
                    ref_grid.fft_subgrids.as_slice(),
                ),
                budget,
            },
            StageCheck {
                stage: "grid",
                error: StageError::between(g.grid.as_slice(), ref_grid.grid.as_slice()),
                budget,
            },
            StageCheck {
                stage: "splitter",
                error: StageError::between(
                    d.split_subgrids.as_slice(),
                    ref_degrid.split_subgrids.as_slice(),
                ),
                budget,
            },
            StageCheck {
                stage: "subgrid-ifft",
                error: StageError::between(
                    d.ifft_subgrids.as_slice(),
                    ref_degrid.ifft_subgrids.as_slice(),
                ),
                budget,
            },
            StageCheck {
                stage: "visibilities",
                error: StageError::between_visibilities(&d.visibilities, &ref_degrid.visibilities),
                budget,
            },
        ];

        reports.push(BackendReport {
            backend,
            case: case.name,
            checks,
        });
    }
    Ok(reports)
}

/// Run every standard case through every back-end; panic with a full
/// per-stage table if any budget is violated.
pub fn assert_conformance() -> Result<Vec<BackendReport>, IdgError> {
    let mut reports = Vec::new();
    for case in standard_cases()? {
        reports.extend(run_case(&case)?);
    }
    let mut failures = String::new();
    for report in &reports {
        if !report.violations().is_empty() {
            failures.push_str(&report.summary());
        }
    }
    assert!(failures.is_empty(), "conformance violations:\n{failures}");
    Ok(reports)
}

#[cfg(test)]
mod tests {
    use super::*;
    use idg::Complex;

    #[test]
    fn identical_buffers_have_zero_error() {
        let buf = vec![Cf32::new(1.0, -2.0), Cf32::new(0.5, 0.25)];
        let e = StageError::between(&buf, &buf);
        assert_eq!(e.rms, 0.0);
        assert_eq!(e.max, 0.0);
        assert!(StageBudget::for_backend(Backend::CpuReference).admits(e));
    }

    #[test]
    fn zero_reference_only_admits_zero_candidate() {
        let z = vec![Cf32::new(0.0, 0.0); 4];
        let nz = vec![Cf32::new(1e-9, 0.0); 4];
        assert_eq!(StageError::between(&z, &z).rms, 0.0);
        let e = StageError::between(&nz, &z);
        assert!(e.rms.is_infinite() && e.max.is_infinite());
        assert!(!StageBudget::for_backend(Backend::CpuOptimized).admits(e));
    }

    #[test]
    fn relative_error_matches_hand_computation() {
        let reference = vec![Complex::new(2.0f32, 0.0)];
        let candidate = vec![Complex::new(2.0f32, 0.002)];
        let e = StageError::between(&candidate, &reference);
        assert!((e.rms - 0.001).abs() < 1e-9);
        assert!((e.max - 0.001).abs() < 1e-9);
    }

    #[test]
    fn standard_cases_are_three_distinct_shapes() {
        let cases = standard_cases().expect("standard cases build");
        assert_eq!(cases.len(), 3);
        assert!(cases.iter().any(|c| c.obs.w_step > 0.0));
        assert!(cases.iter().any(|c| c.beam_seed.is_some()));
        // the ragged case must actually miss the SIMD boundaries
        let ragged = &cases[2];
        let vis_per_item = ragged.obs.aterm_interval * ragged.obs.nr_channels();
        assert_ne!(vis_per_item % 16, 0, "tail case must not be LANES-aligned");
    }
}
