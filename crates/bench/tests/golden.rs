//! Golden-file tests for the figure JSON exports.
//!
//! Each test rebuilds a figure's rows on the tiny seeded benchmark
//! observation (`benchmark_dataset(30)` — 5 stations, deterministic
//! seed 42), serializes them with wall-clock values masked, and
//! compares byte-for-byte against the committed snapshot under
//! `tests/golden/`. Every modeled number is pinned exactly; only
//! host-timing cells are masked.
//!
//! Blessing: after an intentional change to the models or the export
//! format, regenerate the snapshots with
//!
//! ```text
//! IDG_BLESS=1 cargo test -p idg-bench --test golden
//! ```
//!
//! and commit the updated files with the change that motivated them.

use idg_bench::{benchmark_dataset, fig10_rows, fig12_rows, fig_json};
use idg_obs::validate_json;
use std::path::PathBuf;

/// Scale 30 → the 5-station miniature of the SKA1-low benchmark set.
const GOLDEN_SCALE: usize = 30;

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(name)
}

/// Compare `actual` against the committed snapshot, or rewrite the
/// snapshot when `IDG_BLESS` is set.
fn check_golden(name: &str, actual: &str) {
    validate_json(actual).unwrap_or_else(|e| panic!("{name}: emitted JSON invalid: {e}"));
    let path = golden_path(name);
    if std::env::var_os("IDG_BLESS").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, actual).unwrap();
        eprintln!("blessed {}", path.display());
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden snapshot {} ({e}); generate it with \
             IDG_BLESS=1 cargo test -p idg-bench --test golden",
            path.display()
        )
    });
    assert_eq!(
        actual, expected,
        "{name} drifted from its golden snapshot; if the change is \
         intentional, re-bless with IDG_BLESS=1 cargo test -p idg-bench --test golden"
    );
}

#[test]
fn fig10_throughput_json_matches_golden_snapshot() {
    let ds = benchmark_dataset(GOLDEN_SCALE);
    let rows = fig10_rows(&ds);
    // the host row is an observed run: its masked cells prove the
    // wall-clock masking, the modeled rows pin the device models
    assert!(rows.iter().any(|r| r.wall_clock));
    assert!(rows.iter().filter(|r| !r.wall_clock).count() >= 3);
    check_golden(
        "fig10_throughput.json",
        &fig_json("fig10_throughput", &rows, true),
    );
}

#[test]
fn fig12_sincos_mix_json_matches_golden_snapshot() {
    // host_iterations = 0: the wall-clock column is masked in the
    // snapshot, so there is no point burning time measuring it here
    let rows = fig12_rows(0);
    assert!(!rows.is_empty());
    check_golden(
        "fig12_sincos_mix.json",
        &fig_json("fig12_sincos_mix", &rows, true),
    );
}
