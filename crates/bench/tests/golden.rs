//! Golden-file tests for the figure JSON exports.
//!
//! Each test rebuilds a figure's rows on the tiny seeded benchmark
//! observation (`benchmark_dataset(30)` — 5 stations, deterministic
//! seed 42), serializes them with wall-clock values masked, and
//! compares byte-for-byte against the committed snapshot under
//! `tests/golden/`. Every modeled number is pinned exactly; only
//! host-timing cells are masked.
//!
//! Blessing: after an intentional change to the models or the export
//! format, regenerate the snapshots with
//!
//! ```text
//! IDG_BLESS=1 cargo test -p idg-bench --test golden
//! ```
//!
//! and commit the updated files with the change that motivated them.

use idg_bench::{
    bench_json, bench_pass_row, bench_row_value, benchmark_dataset, fig10_rows, fig12_rows,
    fig_json, fleet_bench_row, fleet_chaos_run, host_measured_run, stream_bench_row,
    stream_degrid_bench_row, stream_degrid_run, stream_run, streamed_benchmark_dataset,
};
use idg_obs::validate_json;
use std::path::PathBuf;

/// Scale 30 → the 5-station miniature of the SKA1-low benchmark set.
const GOLDEN_SCALE: usize = 30;

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(name)
}

/// Compare `actual` against the committed snapshot, or rewrite the
/// snapshot when `IDG_BLESS` is set.
fn check_golden(name: &str, actual: &str) {
    validate_json(actual).unwrap_or_else(|e| panic!("{name}: emitted JSON invalid: {e}"));
    let path = golden_path(name);
    if std::env::var_os("IDG_BLESS").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, actual).unwrap();
        eprintln!("blessed {}", path.display());
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden snapshot {} ({e}); generate it with \
             IDG_BLESS=1 cargo test -p idg-bench --test golden",
            path.display()
        )
    });
    assert_eq!(
        actual, expected,
        "{name} drifted from its golden snapshot; if the change is \
         intentional, re-bless with IDG_BLESS=1 cargo test -p idg-bench --test golden"
    );
}

#[test]
fn fig10_throughput_json_matches_golden_snapshot() {
    let ds = benchmark_dataset(GOLDEN_SCALE);
    let rows = fig10_rows(&ds);
    // the host row is an observed run: its masked cells prove the
    // wall-clock masking, the modeled rows pin the device models
    assert!(rows.iter().any(|r| r.wall_clock));
    assert!(rows.iter().filter(|r| !r.wall_clock).count() >= 3);
    check_golden(
        "fig10_throughput.json",
        &fig_json("fig10_throughput", &rows, true),
    );
}

#[test]
fn bench_guard_json_matches_golden_snapshot() {
    // The BENCH_*.json schema the wall-clock guard exports: the masked
    // form pins the deterministic columns (scale, visibility count —
    // these change only when the workload itself changes) while the
    // `_wall` timing columns are machine-specific and masked out. The
    // `fleet` row is entirely modeled, so all of its columns —
    // including the degradation-step count its injected OOM forces —
    // are pinned exactly.
    let ds = benchmark_dataset(GOLDEN_SCALE);
    let run = host_measured_run(&ds);
    let fleet = fleet_chaos_run(&ds);
    for (pass, report, fleet_report) in [
        ("gridder", &run.gridding, &fleet.gridding),
        ("degridder", &run.degridding, &fleet.degridding),
    ] {
        let rows = vec![
            bench_pass_row("kernel-cache", GOLDEN_SCALE, report),
            fleet_bench_row(GOLDEN_SCALE, fleet_report),
        ];
        let masked = bench_json(pass, &rows, true);
        // wall columns are masked, deterministic columns survive
        assert_eq!(
            bench_row_value(&masked, "kernel-cache", GOLDEN_SCALE, "total_s_wall"),
            None
        );
        assert!(bench_row_value(&masked, "kernel-cache", GOLDEN_SCALE, "visibilities").is_some());
        // the fleet row survives masking whole: its injected OOM must
        // register at least one ladder rung, and no rung may reach the
        // CPU-fallback floor (that would surface as failed jobs)
        let steps = bench_row_value(&masked, "fleet", GOLDEN_SCALE, "degradation_steps")
            .expect("fleet row carries degradation_steps");
        assert!(steps >= 1.0, "injected OOM took no ladder rung");
        assert!(bench_row_value(&masked, "fleet", GOLDEN_SCALE, "makespan_s").is_some());
        assert!(fleet_report.fallback_jobs.is_empty());
        check_golden(&format!("BENCH_{pass}.json"), &masked);
    }
}

#[test]
fn stream_bench_json_matches_golden_snapshot() {
    // The `stream` and `stream_degrid` rows are entirely modeled and
    // their backpressure metrics are deterministic by construction, so
    // every column is pinned exactly (their own snapshot file: the
    // one-shot BENCH_*.json goldens predate streaming and stay
    // untouched).
    let ds = streamed_benchmark_dataset(GOLDEN_SCALE);
    let report = stream_run(&ds);
    let degrid_report = stream_degrid_run(&ds);
    let rows = vec![
        stream_bench_row(GOLDEN_SCALE, &report),
        stream_degrid_bench_row(GOLDEN_SCALE, &degrid_report),
    ];
    let masked = bench_json("stream", &rows, true);
    for label in ["stream", "stream_degrid"] {
        let chunks = bench_row_value(&masked, label, GOLDEN_SCALE, "nr_chunks")
            .unwrap_or_else(|| panic!("{label} row carries nr_chunks"));
        assert!(chunks >= 2.0, "{label} bench must exercise chunking");
        let waits = bench_row_value(&masked, label, GOLDEN_SCALE, "backpressure_waits")
            .unwrap_or_else(|| panic!("{label} row carries backpressure_waits"));
        assert!(
            waits >= 1.0,
            "{label}: admission window must constrain the stream"
        );
        assert!(bench_row_value(&masked, label, GOLDEN_SCALE, "makespan_s").is_some());
    }
    check_golden("BENCH_stream.json", &masked);
}

#[test]
fn committed_baselines_parse_and_carry_the_speedup_contract() {
    // The committed scale-15 baselines must stay parseable and must
    // document a >= 1.2x kernel-cache improvement over the seed row —
    // the acceptance criterion of the kernel-cache change.
    for pass in ["gridder", "degridder"] {
        let path = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
            .join("baselines")
            .join(format!("BENCH_{pass}.json"));
        let baseline = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("missing baseline {}: {e}", path.display()));
        validate_json(&baseline).unwrap_or_else(|e| panic!("{pass} baseline invalid: {e}"));
        let seed = bench_row_value(&baseline, "seed", 15, "total_s_wall")
            .unwrap_or_else(|| panic!("{pass} baseline lacks a seed row at scale 15"));
        let cached = bench_row_value(&baseline, "kernel-cache", 15, "total_s_wall")
            .unwrap_or_else(|| panic!("{pass} baseline lacks a kernel-cache row at scale 15"));
        assert!(
            seed / cached >= 1.2,
            "{pass}: committed speedup {:.2}x below the 1.2x acceptance floor",
            seed / cached
        );
    }
}

#[test]
fn fig12_sincos_mix_json_matches_golden_snapshot() {
    // host_iterations = 0: the wall-clock column is masked in the
    // snapshot, so there is no point burning time measuring it here
    let rows = fig12_rows(0);
    assert!(!rows.is_empty());
    check_golden(
        "fig12_sincos_mix.json",
        &fig_json("fig12_sincos_mix", &rows, true),
    );
}
