//! # idg-bench — the benchmark harness
//!
//! One binary per table/figure of the paper's evaluation section (see
//! DESIGN.md §4 for the index) plus criterion micro-benchmarks for the
//! individual kernels. The binaries print the same rows/series the
//! paper reports and write CSV files under `results/`.
//!
//! The workload is the paper's benchmark data set (Sec. VI-A: SKA1-low
//! layout, 24² subgrids on a 2048² grid, 16 channels, A-terms every 256
//! steps) at a configurable scale: `IDG_BENCH_SCALE` divides the station
//! count (default 10 → 15 stations; 1 = the full 150-station,
//! 8192-time-step set, which needs a large machine).

#![forbid(unsafe_code)]
#![deny(missing_docs)]

use idg::telescope::Dataset;
use idg::{Backend, ExecutionReport, Plan, Proxy};
use idg_perf::{
    degridder_counts, gridder_counts, modeled_kernel_seconds, Architecture, EnergyModel, OpCounts,
};
use std::io::Write;

/// The benchmark scale from `IDG_BENCH_SCALE` (default 10).
pub fn bench_scale() -> usize {
    std::env::var("IDG_BENCH_SCALE")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(10)
}

/// Build the benchmark data set at the requested scale.
pub fn benchmark_dataset(scale: usize) -> Dataset {
    Dataset::representative(scale, 42).expect("representative dataset")
}

/// One back-end's measured/modeled gridding + degridding pass.
pub struct BackendRun {
    /// Row label ("HASWELL (modeled)", "host CPU (measured)", …).
    pub name: String,
    /// Gridding pass report.
    pub gridding: ExecutionReport,
    /// Degridding pass report.
    pub degridding: ExecutionReport,
    /// The Table I architecture this row corresponds to, if any.
    pub arch: Option<Architecture>,
}

/// Model a full CPU pass on a Table I architecture from operation
/// counts (used for the "HASWELL" rows: our host is not a Xeon
/// E5-2697v3, so the paper-architecture rows are modeled exactly like
/// the GPU rows; the host-measured row is printed alongside).
pub fn model_cpu_report(
    arch: &Architecture,
    counts: OpCounts,
    nr_subgrids: usize,
    subgrid_size: usize,
    pass: &'static str,
) -> ExecutionReport {
    let kernel = modeled_kernel_seconds(arch, &counts, 0.9);
    // subgrid FFTs at a third of peak; adder at memory bandwidth
    let n = subgrid_size as f64;
    let fft_flops = 4.0 * nr_subgrids as f64 * 2.0 * n * 5.0 * n * n.log2();
    let fft = fft_flops / (arch.peak_tflops * 1e12 / 3.0);
    let adder_bytes = nr_subgrids as f64 * 4.0 * n * n * 8.0 * 2.0;
    let adder = adder_bytes / (arch.mem_bw_gbps * 1e9);
    let total = kernel + fft + adder;
    let energy = EnergyModel::new(arch.clone());
    ExecutionReport {
        backend: arch.nickname.to_lowercase(),
        pass,
        modeled: true,
        kernel_seconds: kernel,
        fft_seconds: fft,
        adder_seconds: adder,
        transfer_seconds: 0.0,
        total_seconds: total,
        counts,
        device_energy_j: Some(energy.device_energy(total, 1.0)),
        host_energy_j: Some(0.0),
        nr_retries: 0,
        backoff_seconds: 0.0,
        fallback_jobs: Vec::new(),
        fleet: None,
        metrics: None,
        stream: None,
    }
}

/// Run gridding + degridding on every comparison row: the three paper
/// architectures (HASWELL modeled, FIJI modeled, PASCAL modeled) plus
/// the measured host CPU. Executed rows run *observed* (an `idg-obs`
/// session), so their reports carry the measured [`MetricsSnapshot`]
/// and the self-validation against the analytic model has already
/// passed by the time a row is returned.
pub fn collect_backend_runs(ds: &Dataset) -> Vec<BackendRun> {
    let mut runs = Vec::new();
    let obs = &ds.obs;

    // measured host row (optimized CPU kernels)
    let proxy = Proxy::new(Backend::CpuOptimized, obs.clone()).expect("proxy");
    let plan = proxy.plan(&ds.uvw).expect("plan");
    let (grid, g, _) = proxy
        .grid_observed(&plan, &ds.uvw, &ds.visibilities, &ds.aterms)
        .expect("grid");
    let (_, d, _) = proxy
        .degrid_observed(&plan, &grid, &ds.uvw, &ds.aterms)
        .expect("degrid");
    runs.push(BackendRun {
        name: "host CPU (measured)".into(),
        gridding: g,
        degridding: d,
        arch: None,
    });

    // HASWELL modeled from the same counts
    let haswell = Architecture::haswell();
    let gc = gridder_counts(&plan.items, obs.subgrid_size);
    let dc = degridder_counts(&plan.items, obs.subgrid_size);
    runs.push(BackendRun {
        name: "HASWELL (modeled)".into(),
        gridding: model_cpu_report(
            &haswell,
            gc,
            plan.nr_subgrids(),
            obs.subgrid_size,
            "gridding",
        ),
        degridding: model_cpu_report(
            &haswell,
            dc,
            plan.nr_subgrids(),
            obs.subgrid_size,
            "degridding",
        ),
        arch: Some(haswell),
    });

    // GPU device models; split the work into enough groups that the
    // triple-buffered pipeline can overlap transfers with kernels
    // (a single launch has nothing to overlap with).
    for (backend, arch) in [
        (Backend::GpuFiji, Architecture::fiji()),
        (Backend::GpuPascal, Architecture::pascal()),
    ] {
        let mut proxy = Proxy::new(backend, obs.clone()).expect("proxy");
        proxy.work_group_size = (plan.nr_subgrids() / 16).clamp(1, 256);
        let (grid, g, _) = proxy
            .grid_observed(&plan, &ds.uvw, &ds.visibilities, &ds.aterms)
            .expect("grid");
        let (_, d, _) = proxy
            .degrid_observed(&plan, &grid, &ds.uvw, &ds.aterms)
            .expect("degrid");
        runs.push(BackendRun {
            name: format!("{} (modeled)", arch.nickname),
            gridding: g,
            degridding: d,
            arch: Some(arch),
        });
    }
    runs
}

/// Run the measured host-CPU pass only (one row of grounding data next
/// to the modeled paper architectures).
pub fn host_measured_run(ds: &Dataset) -> BackendRun {
    let proxy = Proxy::new(Backend::CpuOptimized, ds.obs.clone()).expect("proxy");
    let plan = proxy.plan(&ds.uvw).expect("plan");
    let (grid, g, _) = proxy
        .grid_observed(&plan, &ds.uvw, &ds.visibilities, &ds.aterms)
        .expect("grid");
    let (_, d, _) = proxy
        .degrid_observed(&plan, &grid, &ds.uvw, &ds.aterms)
        .expect("degrid");
    BackendRun {
        name: "host CPU (measured)".into(),
        gridding: g,
        degridding: d,
        arch: None,
    }
}

/// Run both passes through the `Proxy` fleet path: two simulated
/// Pascal devices sharing one kernel cache, with one targeted
/// allocation OOM on member 0 so the degradation ladder takes at least
/// one rung per pass. Everything about the run is deterministic — the
/// fault is pinned to `(job 0, attempt 0, Alloc)` and all timing is
/// the modeled pipeline clock — so the fleet columns this feeds into
/// the BENCH exports are pinned exactly by the golden suite.
pub fn fleet_chaos_run(ds: &Dataset) -> BackendRun {
    use idg::gpusim::{FaultConfig, FaultKind, TargetedFault};
    use idg::types::FaultSite;
    use idg::FleetConfig;

    let oom = FaultConfig::targeted(vec![TargetedFault {
        job: 0,
        attempt: 0,
        site: FaultSite::Alloc,
        kind: FaultKind::OutOfMemory,
    }]);
    let proxy = Proxy::new(Backend::GpuPascal, ds.obs.clone())
        .expect("fleet bench proxy")
        .with_fleet_config(FleetConfig {
            nr_devices: 2,
            member_faults: vec![(0, oom)],
            breaker: None,
        });
    let plan = proxy.plan(&ds.uvw).expect("fleet bench plan");
    let (grid, g) = proxy
        .grid(&plan, &ds.uvw, &ds.visibilities, &ds.aterms)
        .expect("fleet grid");
    let (_, d) = proxy
        .degrid(&plan, &grid, &ds.uvw, &ds.aterms)
        .expect("fleet degrid");
    BackendRun {
        name: "fleet 2x PASCAL (modeled)".into(),
        gridding: g,
        degridding: d,
        arch: None,
    }
}

/// The `fleet` row of a BENCH_*.json export: fleet shape and
/// degraded-mode accounting next to the wall-clock rows. Every column
/// is modeled (deterministic), so none carries the `_wall` mask
/// suffix; `makespan_s` is the merged modeled makespan across devices.
pub fn fleet_bench_row(scale: usize, report: &ExecutionReport) -> FigRow {
    let stats = report
        .fleet
        .as_ref()
        .expect("fleet_bench_row needs a fleet-path report");
    FigRow {
        label: "fleet".to_string(),
        wall_clock: false,
        values: vec![
            ("scale", scale as f64),
            ("visibilities", report.counts.visibilities as f64),
            ("nr_devices", stats.nr_devices as f64),
            ("redispatched_jobs", stats.redispatched_jobs as f64),
            ("degradation_steps", stats.degradation_steps as f64),
            ("breaker_trips", stats.breaker_trips as f64),
            ("makespan_s", report.total_seconds),
        ],
    }
}

/// The benchmark data set with an A-term cadence of a quarter
/// observation (same layout/sky seeds as [`benchmark_dataset`]).
/// Chunk boundaries snap to A-term intervals, so the tiny golden-scale
/// set — whose representative cadence is one interval for the whole
/// observation — would otherwise stream as a single chunk.
pub fn streamed_benchmark_dataset(scale: usize) -> Dataset {
    use idg::telescope::{IdentityATerm, Layout, SkyModel};
    use idg::Observation;

    let scale = scale.max(1);
    let nr_stations = (150 / scale).max(4);
    let nr_timesteps = (8192 / (scale * scale)).max(32);
    let obs = Observation::builder()
        .stations(nr_stations)
        .timesteps(nr_timesteps)
        .channels(16, 150e6, 1e6)
        .grid_size(2048 / scale.min(4))
        .subgrid_size(24)
        .aterm_interval((nr_timesteps / 4).max(1))
        .image_size(0.05)
        .build()
        .expect("streamed benchmark observation");
    let lambda_min = obs.min_wavelength();
    let max_baseline_m = obs.max_uv_wavelengths() * lambda_min;
    let arm_radius = (0.40 * max_baseline_m).min(18_000.0);
    let core_radius = (arm_radius / 10.0).min(1_000.0);
    let layout = Layout::ska1_low(nr_stations, core_radius, arm_radius, 42);
    let sky = SkyModel::random(&obs, 16, 0.7, 42 ^ 0x5137);
    Dataset::simulate(obs, &layout, sky, &IdentityATerm)
}

/// Run the streamed-ingestion gridding pass on the modeled Pascal
/// device: one chunk per A-term interval, two workers, an admission
/// window of two. Every timing in the report is modeled (the chunk
/// makespans come from the pipeline clock, the stream makespan from
/// deterministic list scheduling), and both backpressure metrics are
/// deterministic by construction, so the whole `stream` row is pinned
/// exactly by the golden suite.
pub fn stream_run(ds: &Dataset) -> ExecutionReport {
    use idg::{ChunkPolicy, StreamConfig};

    let proxy = Proxy::new(Backend::GpuPascal, ds.obs.clone()).expect("stream bench proxy");
    let config = StreamConfig::new(ChunkPolicy::by_timesteps(ds.obs.aterm_interval), 2, 2);
    let (_, report) = proxy
        .grid_streamed(&config, &ds.uvw, &ds.visibilities, &ds.aterms)
        .expect("stream bench grid");
    report
}

/// The `stream` row of a BENCH_*.json export: chunk/worker shape and
/// the scheduler's backpressure accounting next to the one-shot rows.
/// Every column is deterministic, so none carries the `_wall` mask
/// suffix; `makespan_s` is the modeled streamed makespan (overlapped
/// chunks + the final commit).
pub fn stream_bench_row(scale: usize, report: &ExecutionReport) -> FigRow {
    let stats = report
        .stream
        .as_ref()
        .expect("stream_bench_row needs a streamed-path report");
    FigRow {
        label: "stream".to_string(),
        wall_clock: false,
        values: vec![
            ("scale", scale as f64),
            ("visibilities", report.counts.visibilities as f64),
            ("nr_chunks", stats.nr_chunks as f64),
            ("nr_workers", stats.nr_workers as f64),
            ("max_inflight", stats.max_inflight as f64),
            ("inflight_max", stats.inflight_max as f64),
            ("backpressure_waits", stats.backpressure_waits as f64),
            ("makespan_s", report.total_seconds),
        ],
    }
}

/// Duplex twin of [`stream_run`]: the streamed *degridding* pass on
/// the modeled Pascal device, splitting a model grid (produced by a
/// one-shot gridding pass over the same data set) back into predicted
/// visibilities chunk by chunk. Same chunk policy and window shape;
/// every timing is modeled, so the row pins exactly.
pub fn stream_degrid_run(ds: &Dataset) -> ExecutionReport {
    use idg::{ChunkPolicy, StreamConfig};

    let proxy = Proxy::new(Backend::GpuPascal, ds.obs.clone()).expect("stream bench proxy");
    let plan = proxy.plan(&ds.uvw).expect("stream bench plan");
    let (model, _) = proxy
        .grid(&plan, &ds.uvw, &ds.visibilities, &ds.aterms)
        .expect("stream bench model grid");
    let config = StreamConfig::new(ChunkPolicy::by_timesteps(ds.obs.aterm_interval), 2, 2);
    let (_, report) = proxy
        .degrid_streamed(&config, &model, &ds.uvw, &ds.aterms)
        .expect("stream bench degrid");
    report
}

/// The `stream_degrid` row of a BENCH_*.json export: the duplex
/// direction's chunk/worker shape and backpressure accounting. Like
/// the `stream` row, every column is deterministic (modeled makespan,
/// closed-form scheduler metrics), so none carries the `_wall` mask.
pub fn stream_degrid_bench_row(scale: usize, report: &ExecutionReport) -> FigRow {
    let stats = report
        .stream
        .as_ref()
        .expect("stream_degrid_bench_row needs a streamed-path report");
    FigRow {
        label: "stream_degrid".to_string(),
        wall_clock: false,
        values: vec![
            ("scale", scale as f64),
            ("visibilities", report.counts.visibilities as f64),
            ("nr_chunks", stats.nr_chunks as f64),
            ("nr_workers", stats.nr_workers as f64),
            ("max_inflight", stats.max_inflight as f64),
            ("inflight_max", stats.inflight_max as f64),
            ("backpressure_waits", stats.backpressure_waits as f64),
            ("makespan_s", report.total_seconds),
        ],
    }
}

/// Modeled reports for the *full* paper-scale benchmark (11,175
/// baselines × 8,192 time steps × 16 channels ≈ 1.46 G visibilities),
/// extrapolated from the measured plan statistics of the scaled data
/// set: all operation/byte counters are linear in the number of
/// visibilities for a fixed per-item occupancy, so scaling the counts by
/// the visibility ratio reproduces the full-scale workload without
/// allocating its 1.1 GB of uvw data. GPU rows run the triple-buffered
/// pipeline model over full-size work groups; the HASWELL row uses the
/// shared CPU timing model.
pub fn full_scale_runs(ds: &Dataset) -> Vec<BackendRun> {
    use idg_gpusim::timing::{adder_time, subgrid_fft_time};
    use idg_gpusim::{kernel_time, transfer_time, Device, PipelineSim};

    let obs = &ds.obs;
    let plan = Plan::create(obs, &ds.uvw).expect("plan");
    let gc_small = gridder_counts(&plan.items, obs.subgrid_size);
    let dc_small = degridder_counts(&plan.items, obs.subgrid_size);

    let full_vis: u64 = 11_175 * 8_192 * 16;
    let ratio = full_vis as f64 / gc_small.visibilities as f64;
    let scale_counts = |c: &OpCounts| OpCounts {
        fmas: (c.fmas as f64 * ratio) as u64,
        sincos_pairs: (c.sincos_pairs as f64 * ratio) as u64,
        dram_bytes: (c.dram_bytes as f64 * ratio) as u64,
        shared_bytes: (c.shared_bytes as f64 * ratio) as u64,
        visibilities: full_vis,
    };
    let gc = scale_counts(&gc_small);
    let dc = scale_counts(&dc_small);
    let nr_subgrids = (plan.nr_subgrids() as f64 * ratio) as usize;
    let mean_vis_per_item = full_vis as f64 / nr_subgrids as f64;

    let mut runs = Vec::new();
    let haswell = Architecture::haswell();
    runs.push(BackendRun {
        name: "HASWELL (modeled)".into(),
        gridding: model_cpu_report(&haswell, gc, nr_subgrids, obs.subgrid_size, "gridding"),
        degridding: model_cpu_report(&haswell, dc, nr_subgrids, obs.subgrid_size, "degridding"),
        arch: Some(haswell),
    });

    for device in [Device::fiji(), Device::pascal()] {
        let arch = device.arch.clone();
        let group_items = 256usize;
        let nr_groups = nr_subgrids.div_ceil(group_items).max(1);
        let per_group = |total: &OpCounts| OpCounts {
            fmas: total.fmas / nr_groups as u64,
            sincos_pairs: total.sincos_pairs / nr_groups as u64,
            dram_bytes: total.dram_bytes / nr_groups as u64,
            shared_bytes: total.shared_bytes / nr_groups as u64,
            visibilities: total.visibilities / nr_groups as u64,
        };
        let vis_bytes_per_group = (mean_vis_per_item * group_items as f64 * 44.0) as u64;
        let out_bytes_per_group = (mean_vis_per_item * group_items as f64 * 32.0) as u64;

        let make_pass = |counts: &OpCounts, pass: &'static str, in_bytes: u64, out_bytes: u64| {
            let gcounts = per_group(counts);
            let t_kernel = kernel_time(&device, &gcounts);
            let t_fft = subgrid_fft_time(&device, group_items, obs.subgrid_size);
            let t_add = adder_time(&device, group_items, obs.subgrid_size);
            let mut pipeline = PipelineSim::new(3);
            for _ in 0..nr_groups {
                pipeline.submit(
                    transfer_time(&device, in_bytes),
                    t_kernel + t_fft + t_add,
                    transfer_time(&device, out_bytes),
                );
            }
            let makespan = pipeline.makespan();
            let energy = EnergyModel::new(arch.clone());
            let busy = pipeline.compute_busy();
            ExecutionReport {
                backend: arch.nickname.to_lowercase(),
                pass,
                modeled: true,
                kernel_seconds: t_kernel * nr_groups as f64,
                fft_seconds: t_fft * nr_groups as f64,
                adder_seconds: t_add * nr_groups as f64,
                transfer_seconds: (transfer_time(&device, in_bytes)
                    + transfer_time(&device, out_bytes))
                    * nr_groups as f64,
                total_seconds: makespan,
                counts: *counts,
                device_energy_j: Some(
                    energy.device_energy(busy, 1.0) + energy.device_energy(makespan - busy, 0.0),
                ),
                host_energy_j: Some(energy.host_energy(makespan)),
                nr_retries: 0,
                backoff_seconds: 0.0,
                fallback_jobs: Vec::new(),
                fleet: None,
                metrics: None,
                stream: None,
            }
        };
        let gridding = make_pass(&gc, "gridding", vis_bytes_per_group, 0);
        let degridding = make_pass(&dc, "degridding", 0, out_bytes_per_group);
        runs.push(BackendRun {
            name: format!("{} (modeled)", arch.nickname),
            gridding,
            degridding,
            arch: Some(arch),
        });
    }
    runs
}

/// Write a CSV file under `results/`, creating the directory if needed.
pub fn write_csv(name: &str, header: &str, rows: &[String]) -> std::io::Result<std::path::PathBuf> {
    let dir = std::path::Path::new("results");
    std::fs::create_dir_all(dir)?;
    let path = dir.join(name);
    let mut file = std::fs::File::create(&path)?;
    writeln!(file, "{header}")?;
    for row in rows {
        writeln!(file, "{row}")?;
    }
    Ok(path)
}

/// Write an arbitrary text artifact (JSON export, Chrome trace) under
/// `results/`, creating the directory if needed.
pub fn write_results(name: &str, contents: &str) -> std::io::Result<std::path::PathBuf> {
    let dir = std::path::Path::new("results");
    std::fs::create_dir_all(dir)?;
    let path = dir.join(name);
    std::fs::write(&path, contents)?;
    Ok(path)
}

/// One labeled row of a figure's machine-readable JSON export.
pub struct FigRow {
    /// Row label (backend name, ρ value, …).
    pub label: String,
    /// True when *every* value in the row is a host wall-clock
    /// measurement (non-deterministic across runs). Individual
    /// wall-clock columns inside otherwise-deterministic rows are
    /// marked by a `_wall` suffix on the column name instead.
    pub wall_clock: bool,
    /// `(column, value)` pairs, in column order.
    pub values: Vec<(&'static str, f64)>,
}

/// Serialize figure rows as deterministic, line-oriented JSON: one row
/// object per line, stable key order, shortest-round-trip floats.
///
/// With `mask_wall_clock`, every value that depends on host wall-clock
/// timing (a row flagged [`FigRow::wall_clock`], or a column whose name
/// ends in `_wall`) is replaced by the string `"<wall-clock>"`. The
/// golden-file suite compares the masked form, so snapshots stay stable
/// across machines while still pinning every modeled number exactly.
pub fn fig_json(figure: &str, rows: &[FigRow], mask_wall_clock: bool) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!("  \"figure\": \"{figure}\",\n"));
    out.push_str("  \"rows\": [\n");
    for (i, row) in rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"label\": {:?}, \"wall_clock\": {}",
            row.label, row.wall_clock
        ));
        for (k, v) in &row.values {
            if mask_wall_clock && (row.wall_clock || k.ends_with("_wall")) {
                out.push_str(&format!(", \"{k}\": \"<wall-clock>\""));
            } else {
                out.push_str(&format!(", \"{k}\": {v:?}"));
            }
        }
        out.push_str(if i + 1 == rows.len() { "}\n" } else { "},\n" });
    }
    out.push_str("  ]\n}\n");
    out
}

/// The Fig. 10 throughput rows (MVis/s per backend), shared by the
/// `fig10_throughput` binary and the golden-file suite. Throughputs are
/// derived from [`ExecutionReport::effective_counts`], i.e. from the
/// *measured* counter snapshot on the observed host row.
pub fn fig10_rows(ds: &Dataset) -> Vec<FigRow> {
    let mut runs = vec![host_measured_run(ds)];
    runs.extend(full_scale_runs(ds));
    runs.iter()
        .map(|run| FigRow {
            label: run.name.clone(),
            wall_clock: run.arch.is_none(),
            values: vec![
                ("gridding_mvis_s", run.gridding.mvis_per_sec()),
                ("degridding_mvis_s", run.degridding.mvis_per_sec()),
            ],
        })
        .collect()
}

/// The Fig. 12 mix-curve rows (TOps/s vs ρ), shared by the
/// `fig12_sincos_mix` binary and the golden-file suite. The three
/// Table I curves are analytic; the host column is a wall-clock
/// microkernel measurement (skipped — reported as 0 — when
/// `host_iterations` is 0, e.g. in the golden tests where the column
/// is masked anyway).
pub fn fig12_rows(host_iterations: u64) -> Vec<FigRow> {
    use idg_perf::attainable_ops_per_sec;
    use idg_perf::mix::{measure_host_mix, standard_rhos};
    let archs = Architecture::all();
    standard_rhos()
        .iter()
        .map(|&r| {
            let mut values: Vec<(&'static str, f64)> = archs
                .iter()
                .zip(["haswell_tops", "fiji_tops", "pascal_tops"])
                .map(|(arch, col)| (col, attainable_ops_per_sec(arch, r) / 1e12))
                .collect();
            let host = if host_iterations > 0 {
                measure_host_mix(r.round() as u32, host_iterations) / 1e12
            } else {
                0.0
            };
            values.push(("host_measured_tops_wall", host));
            FigRow {
                label: format!("rho={r}"),
                wall_clock: false,
                values,
            }
        })
        .collect()
}

/// One BENCH_*.json row from one pass of a measured host run.
///
/// Deterministic columns (`scale`, `visibilities`) pin the workload the
/// timing belongs to; every timing column carries the `_wall` suffix so
/// the golden suite masks it (wall-clock is machine-specific) while
/// committed baselines keep the real values for the regression guard.
pub fn bench_pass_row(label: &str, scale: usize, report: &ExecutionReport) -> FigRow {
    FigRow {
        label: label.to_string(),
        wall_clock: false,
        values: vec![
            ("scale", scale as f64),
            ("visibilities", report.counts.visibilities as f64),
            ("kernel_s_wall", report.kernel_seconds),
            ("fft_s_wall", report.fft_seconds),
            ("adder_s_wall", report.adder_seconds),
            ("total_s_wall", report.total_seconds),
            ("mvis_s_wall", report.mvis_per_sec()),
        ],
    }
}

/// Serialize one pass's BENCH rows (`pass` is `"gridder"` or
/// `"degridder"`; the figure tag becomes `BENCH_<pass>`).
pub fn bench_json(pass: &str, rows: &[FigRow], mask_wall_clock: bool) -> String {
    fig_json(&format!("BENCH_{pass}"), rows, mask_wall_clock)
}

/// Extract one named column of one row from a BENCH_*.json document
/// (hand-rolled like every other JSON path in this offline workspace:
/// the format is our own line-oriented `fig_json` output, one row
/// object per line). Returns the value of `column` in the first row
/// whose label and `scale` column match.
pub fn bench_row_value(json: &str, label: &str, scale: usize, column: &str) -> Option<f64> {
    let label_pat = format!("\"label\": \"{label}\"");
    let scale_pat = format!("\"scale\": {:?}", scale as f64);
    let col_pat = format!("\"{column}\": ");
    for line in json.lines() {
        if !(line.contains(&label_pat) && line.contains(&scale_pat)) {
            continue;
        }
        let start = line.find(&col_pat)? + col_pat.len();
        let rest = &line[start..];
        let end = rest.find([',', '}'])?;
        return rest[..end].trim().parse().ok();
    }
    None
}

/// Render a horizontal ASCII bar chart (used for the "distribution"
/// figures): `rows` are `(label, segments)` where each segment is
/// `(name, value)`.
pub fn ascii_stacked_bars(rows: &[(String, Vec<(&str, f64)>)], unit: &str) -> String {
    let width = 50usize;
    let max: f64 = rows
        .iter()
        .map(|(_, segs)| segs.iter().map(|(_, v)| v).sum::<f64>())
        .fold(1e-300, f64::max);
    let glyphs = ['#', '=', '-', '.', '+', '~'];
    let mut out = String::new();
    for (label, segs) in rows {
        let mut bar = String::new();
        for (i, (_, v)) in segs.iter().enumerate() {
            let cells = ((v / max) * width as f64).round() as usize;
            bar.extend(std::iter::repeat_n(glyphs[i % glyphs.len()], cells));
        }
        let total: f64 = segs.iter().map(|(_, v)| v).sum();
        out.push_str(&format!("{label:<22} |{bar:<width$}| {total:.4} {unit}\n"));
    }
    out.push_str("legend: ");
    if let Some((_, segs)) = rows.first() {
        for (i, (name, _)) in segs.iter().enumerate() {
            out.push_str(&format!("{}={} ", glyphs[i % glyphs.len()], name));
        }
    }
    out.push('\n');
    out
}

/// Render a simple ASCII x/y series plot (log-x optional) as a table
/// plus bars (the figure binaries favour precise numbers over pictures).
pub fn series_table(title: &str, x_label: &str, series: &[(String, Vec<(f64, f64)>)]) -> String {
    let mut out = format!("{title}\n{x_label:<12}");
    for (name, _) in series {
        out.push_str(&format!(" {name:>18}"));
    }
    out.push('\n');
    let xs: Vec<f64> = series[0].1.iter().map(|(x, _)| *x).collect();
    for (i, x) in xs.iter().enumerate() {
        out.push_str(&format!("{x:<12.3}"));
        for (_, points) in series {
            out.push_str(&format!(" {:>18.4}", points[i].1));
        }
        out.push('\n');
    }
    out
}

/// Paper-shape check helper: `a` within `[lo, hi] × b`.
pub fn within_factor(a: f64, b: f64, lo: f64, hi: f64) -> bool {
    a >= lo * b && a <= hi * b
}

/// The gridding plan reused by several figure binaries.
pub fn plan_for(ds: &Dataset) -> Plan {
    Plan::create(&ds.obs, &ds.uvw).expect("plan")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_parses_env_or_defaults() {
        // no env manipulation (tests run in parallel); just the default path
        assert!(bench_scale() >= 1);
    }

    #[test]
    fn ascii_bars_render() {
        let rows = vec![
            ("PASCAL".to_string(), vec![("gridder", 3.0), ("fft", 0.2)]),
            ("HASWELL".to_string(), vec![("gridder", 9.0), ("fft", 0.5)]),
        ];
        let text = ascii_stacked_bars(&rows, "s");
        assert!(text.contains("PASCAL"));
        assert!(text.contains("legend"));
    }

    #[test]
    fn series_table_renders() {
        let series = vec![
            ("IDG".to_string(), vec![(8.0, 100.0), (16.0, 100.0)]),
            ("WPG".to_string(), vec![(8.0, 300.0), (16.0, 80.0)]),
        ];
        let text = series_table("fig", "N_W", &series);
        assert!(text.contains("IDG") && text.contains("WPG"));
        assert!(text.lines().count() >= 4);
    }

    #[test]
    fn within_factor_helper() {
        assert!(within_factor(10.0, 5.0, 1.5, 3.0));
        assert!(!within_factor(10.0, 5.0, 3.0, 5.0));
    }

    #[test]
    fn fig_json_masks_wall_clock_values_and_stays_valid() {
        let rows = vec![
            FigRow {
                label: "PASCAL".into(),
                wall_clock: false,
                values: vec![("tops", 1.5), ("host_tops_wall", 4.25)],
            },
            FigRow {
                label: "host".into(),
                wall_clock: true,
                values: vec![("tops", 3.75), ("host_tops_wall", 8.5)],
            },
        ];
        let open = fig_json("figX", &rows, false);
        let masked = fig_json("figX", &rows, true);
        idg_obs::validate_json(&open).expect("open json");
        idg_obs::validate_json(&masked).expect("masked json");
        assert!(open.contains("1.5") && open.contains("8.5"));
        assert!(!open.contains("<wall-clock>"));
        // masked: the one deterministic value survives, the _wall
        // column and the wall-clock row are both replaced
        assert!(masked.contains("1.5"));
        assert!(!masked.contains("4.25") && !masked.contains("3.75") && !masked.contains("8.5"));
        assert_eq!(masked.matches("<wall-clock>").count(), 3);
    }

    #[test]
    fn bench_rows_round_trip_through_the_hand_rolled_parser() {
        let report = ExecutionReport {
            backend: "cpu-optimized".into(),
            pass: "gridding",
            modeled: false,
            kernel_seconds: 0.125,
            fft_seconds: 0.5,
            adder_seconds: 0.25,
            transfer_seconds: 0.0,
            total_seconds: 0.875,
            counts: OpCounts {
                visibilities: 1000,
                ..OpCounts::default()
            },
            device_energy_j: None,
            host_energy_j: None,
            nr_retries: 0,
            backoff_seconds: 0.0,
            fallback_jobs: Vec::new(),
            fleet: None,
            metrics: None,
            stream: None,
        };
        let rows = vec![
            bench_pass_row("seed", 15, &report),
            bench_pass_row("kernel-cache", 15, &report),
        ];
        let json = bench_json("gridder", &rows, false);
        idg_obs::validate_json(&json).expect("bench json is valid");
        assert!(json.contains("\"figure\": \"BENCH_gridder\""));
        assert_eq!(
            bench_row_value(&json, "kernel-cache", 15, "total_s_wall"),
            Some(0.875)
        );
        assert_eq!(
            bench_row_value(&json, "seed", 15, "visibilities"),
            Some(1000.0)
        );
        // wrong scale or label: no row
        assert_eq!(
            bench_row_value(&json, "kernel-cache", 8, "total_s_wall"),
            None
        );
        assert_eq!(bench_row_value(&json, "missing", 15, "total_s_wall"), None);
        // masked export stays parseable JSON but hides the wall columns
        let masked = bench_json("gridder", &rows, true);
        idg_obs::validate_json(&masked).expect("masked bench json");
        assert_eq!(bench_row_value(&masked, "seed", 15, "total_s_wall"), None);
        assert_eq!(
            bench_row_value(&masked, "seed", 15, "visibilities"),
            Some(1000.0)
        );
    }

    #[test]
    fn model_cpu_report_is_kernel_dominated() {
        use idg_types::Baseline;
        let items: Vec<idg::WorkItem> = (0..16)
            .map(|i| idg::WorkItem {
                baseline_index: i,
                baseline: Baseline::new(0, 1),
                time_offset: 0,
                nr_timesteps: 128,
                channel_offset: 0,
                nr_channels: 16,
                aterm_index: 0,
                coord_x: 0,
                coord_y: 0,
                w_plane: 0,
            })
            .collect();
        let counts = gridder_counts(&items, 24);
        let report = model_cpu_report(&Architecture::haswell(), counts, 16, 24, "gridding");
        assert!(
            report.kernel_fraction() > 0.9,
            "fraction {}",
            report.kernel_fraction()
        );
        assert!(report.device_energy_j.unwrap() > 0.0);
    }
}
