//! Ablation: sincos accuracy vs image fidelity.
//!
//! The paper's performance hinges on cheap sine/cosine evaluation —
//! SVML "medium accuracy (maximum of 4 ulps error)" on the CPU and the
//! CUDA fast-math path ("maximum error of 2 ulps … which is sufficient
//! for IDG") on the GPU. This ablation verifies the *sufficiency* claim
//! end-to-end: grid the same data with the libm, medium and fast sincos
//! paths and measure both the kernel time and the deviation of the
//! resulting dirty image from the f64 reference.

use idg::kernels::{
    add_subgrids, fft_subgrids, gridder_cpu, gridder_reference, FftNorm, KernelCache, KernelData,
    SubgridArray,
};
use idg::math::Accuracy;
use idg::telescope::{Dataset, IdentityATerm, Layout, SkyModel};
use idg::types::{Grid, Observation};
use idg_bench::write_csv;
use idg_fft::Direction;
use idg_imaging::dirty_image;
use std::time::Instant;

fn image_for(
    data: &KernelData<'_>,
    plan: &idg::Plan,
    obs: &Observation,
    accuracy: Option<Accuracy>,
) -> (idg_imaging::Image, f64) {
    let mut subgrids = SubgridArray::new(plan.nr_subgrids(), obs.subgrid_size);
    let start = Instant::now();
    match accuracy {
        None => gridder_reference(data, &plan.items, &mut subgrids),
        Some(acc) => gridder_cpu(data, &plan.items, &mut subgrids, acc, &KernelCache::new()),
    }
    .expect("gridder inputs are consistent");
    let kernel_s = start.elapsed().as_secs_f64();
    fft_subgrids(&mut subgrids, Direction::Forward, FftNorm::None);
    let mut grid = Grid::<f32>::new(obs.grid_size);
    add_subgrids(&mut grid, &plan.items, &subgrids, &KernelCache::new())
        .expect("subgrid placement is consistent");
    (
        dirty_image(&grid, obs, plan.nr_gridded_visibilities()),
        kernel_s,
    )
}

fn main() {
    let obs = Observation::builder()
        .stations(8)
        .timesteps(64)
        .channels(8, 150e6, 1e6)
        .grid_size(256)
        .subgrid_size(24)
        .kernel_size(9)
        .aterm_interval(32)
        .image_size(0.05)
        .build()
        .expect("observation");
    let layout = Layout::uniform(obs.nr_stations, 1500.0, 77);
    let sky = SkyModel::random(&obs, 5, 0.5, 79);
    let ds = Dataset::simulate(obs.clone(), &layout, sky, &IdentityATerm);
    let taper = idg::math::spheroidal_2d(obs.subgrid_size);
    let data = KernelData {
        obs: &obs,
        uvw: &ds.uvw,
        visibilities: &ds.visibilities,
        aterms: &ds.aterms,
        taper: &taper,
    };
    let plan = idg::Plan::create(&obs, &ds.uvw).expect("plan");

    let (reference, _) = image_for(&data, &plan, &obs, None);
    let peak = reference.peak().2.abs() as f64;

    println!(
        "Ablation: sincos accuracy vs image fidelity ({} visibilities)\n",
        ds.nr_visibilities()
    );
    println!(
        "{:<22} {:>12} {:>16} {:>18}",
        "sincos path", "kernel (s)", "max image err", "err / image peak"
    );

    let mut rows = Vec::new();
    let mut errors = Vec::new();
    for (name, acc) in [
        ("libm (high)", Accuracy::High),
        ("medium (SVML-like)", Accuracy::Medium),
        ("fast (CUDA-like)", Accuracy::Fast),
    ] {
        let (image, kernel_s) = image_for(&data, &plan, &obs, Some(acc));
        let max_err = image
            .as_slice()
            .iter()
            .zip(reference.as_slice())
            .map(|(a, b)| (a - b).abs() as f64)
            .fold(0.0, f64::max);
        let rel = max_err / peak;
        println!("{name:<22} {kernel_s:>12.3} {max_err:>16.3e} {rel:>18.3e}");
        rows.push(format!("{name},{kernel_s},{max_err},{rel}"));
        errors.push(rel);
    }

    // the sufficiency claim: even the fast path perturbs the image by
    // a negligible fraction of the peak
    for (rel, name) in errors.iter().zip(["high", "medium", "fast"]) {
        assert!(
            *rel < 1e-3,
            "{name} sincos must not visibly perturb the image: {rel}"
        );
    }
    println!("\nall sincos paths stay below 0.1 % of the image peak — \"sufficient for IDG\".");

    let path = write_csv(
        "ablation_accuracy.csv",
        "path,kernel_s,max_image_err,err_over_peak",
        &rows,
    )
    .expect("csv");
    println!("wrote {}", path.display());
}
