//! Fig. 11: the modified roofline analysis.
//!
//! One operation is {+, −, ×, sin(), cos()}. For each architecture the
//! gridder and degridder are placed at their device-memory operational
//! intensity against (a) the hardware roofline and (b) the dashed
//! ρ = 17 instruction-mix ceiling of Sec. VI-C. Shape to reproduce:
//! all kernels compute-bound; PASCAL near the raw peak (74 %/55 % for
//! gridder/degridder); HASWELL and FIJI far from the raw peak but close
//! to their mix ceilings.

use idg_bench::{bench_scale, benchmark_dataset, full_scale_runs, write_csv};
use idg_perf::roofline::MemoryLevel;
use idg_perf::{Roofline, RooflinePoint};

fn main() {
    let scale = bench_scale();
    let ds = benchmark_dataset(scale);
    println!("Fig. 11: roofline analysis (ops = +,-,*,sin,cos), scale {scale}\n");

    let runs = full_scale_runs(&ds);
    let mut rows = Vec::new();
    for run in runs.iter().filter(|r| r.arch.is_some()) {
        let arch = run.arch.clone().unwrap();
        let mut roofline = Roofline::new(arch.clone(), MemoryLevel::Dram);
        // effective_counts() prefers the measured snapshot of observed
        // runs over the analytic model (they are asserted equal on
        // clean runs, so modeled rows are unchanged)
        let g_point = RooflinePoint::from_counts(
            "gridder",
            &run.gridding.effective_counts(),
            run.gridding.kernel_seconds,
            MemoryLevel::Dram,
        );
        let d_point = RooflinePoint::from_counts(
            "degridder",
            &run.degridding.effective_counts(),
            run.degridding.kernel_seconds,
            MemoryLevel::Dram,
        );
        roofline.push(g_point.clone());
        roofline.push(d_point.clone());
        print!("{}", roofline.render());

        // paper-shape checks
        for p in [&g_point, &d_point] {
            assert!(
                p.intensity > roofline.ridge_intensity(),
                "{} {} must be compute-bound",
                arch.nickname,
                p.name
            );
            let mix_eff = roofline.efficiency(p);
            // Every kernel must be explained by one of the paper's two
            // ceilings: the rho = 17 mix bound (HASWELL, FIJI) or the
            // shared-memory bandwidth bound (PASCAL, Sec. VI-C-2 /
            // Fig. 13 - its SFUs put the mix ceiling at the raw peak,
            // which the shared-memory traffic prevents reaching).
            let report = if p.name == "gridder" {
                &run.gridding
            } else {
                &run.degridding
            };
            let shared_roof = Roofline::new(arch.clone(), MemoryLevel::Shared);
            let shared_point = RooflinePoint::from_counts(
                &p.name,
                &report.effective_counts(),
                report.kernel_seconds,
                MemoryLevel::Shared,
            );
            let shared_eff = shared_roof.hardware_efficiency(&shared_point);
            assert!(
                (mix_eff > 0.55 || shared_eff > 0.85) && mix_eff < 1.15,
                "{} {} explained by neither ceiling: mix {mix_eff}, shared {shared_eff}",
                arch.nickname,
                p.name
            );
            rows.push(format!(
                "{},{},{},{},{},{}",
                arch.nickname,
                p.name,
                p.intensity,
                p.achieved_tops,
                roofline.hardware_efficiency(p),
                mix_eff
            ));
        }
        let g_frac = g_point.achieved_tops / arch.peak_tops();
        println!(
            "  peak fractions: gridder {:.1} %, degridder {:.1} %\n",
            100.0 * g_frac,
            100.0 * d_point.achieved_tops / arch.peak_tops()
        );
        if arch.nickname == "PASCAL" {
            assert!(
                g_frac > 0.6,
                "PASCAL gridder should be near peak (paper: 74 %), got {g_frac}"
            );
        }
        if arch.nickname == "HASWELL" {
            assert!(
                g_frac < 0.4,
                "HASWELL should sit well below the raw peak, got {g_frac}"
            );
        }
    }

    let path = write_csv(
        "fig11_roofline.csv",
        "arch,kernel,intensity_ops_per_byte,achieved_tops,hw_efficiency,mix_efficiency",
        &rows,
    )
    .expect("csv");
    println!("wrote {}", path.display());
}
