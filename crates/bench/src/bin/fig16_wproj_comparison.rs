//! Fig. 16: throughput of WPG and IDG for various W-kernel sizes.
//!
//! For each required kernel support `N_W`, IDG runs with the smallest
//! subgrid `Ñ ≥ N_W + taper margin` (24 minimum, the paper's LOFAR
//! figure) while WPG convolves every visibility with an `N_W × N_W`
//! oversampled kernel. Two comparisons are produced:
//!
//! * **modeled PASCAL** — IDG from this workspace's device model; WPG
//!   from Romein's reported efficiency (≈28 % of peak on the
//!   convolution FMAs \[19\], \[21\]) plus the scatter/work-distribution
//!   overhead per visibility that dominates small kernels;
//! * **measured host CPU** — the real `idg-wproj` gridder against the
//!   real IDG CPU gridder on the same visibilities.
//!
//! Shape to reproduce: IDG roughly flat (stepping down as `Ñ` grows),
//! WPG decaying with `N_W²` but overhead-limited at small `N_W`; IDG
//! clearly ahead for the practically common small kernels
//! ("In practice, N_W ≤ 24 is more common than larger values"),
//! comparable at large `N_W`.

use idg::telescope::{ATerms, Dataset};
use idg::types::{Baseline, Observation, SPEED_OF_LIGHT};
use idg::{Backend, Proxy};
use idg_bench::{bench_scale, write_csv};
use idg_gpusim::{kernel_time, Device};
use idg_perf::gridder_counts;
use idg_plan::WorkItem;
use idg_wproj::gridder::{wpg_grid, WKernelCache, WpgSample};
use std::time::Instant;

/// Smallest IDG subgrid that accommodates an `N_W` kernel plus taper.
fn idg_subgrid_for(nw: usize) -> usize {
    ((nw + 8).div_ceil(8) * 8).max(24)
}

/// Modeled PASCAL IDG gridding throughput (MVis/s) at subgrid size `n`.
fn idg_pascal_mvis(n: usize) -> f64 {
    let device = Device::pascal();
    let item = WorkItem {
        baseline_index: 0,
        baseline: Baseline::new(0, 1),
        time_offset: 0,
        nr_timesteps: 128,
        channel_offset: 0,
        nr_channels: 16,
        aterm_index: 0,
        coord_x: 0,
        coord_y: 0,
        w_plane: 0,
    };
    let items = vec![item; 64];
    let counts = gridder_counts(&items, n);
    let t = kernel_time(&device, &counts);
    counts.visibilities as f64 / t / 1e6
}

/// Modeled PASCAL WPG gridding throughput (MVis/s) at support `nw`.
fn wpg_pascal_mvis(nw: usize) -> f64 {
    let peak = 9.22e12;
    let flops = (nw * nw * 8) as f64; // 4 complex MACs per tap (4 pol)
    let t_compute = flops / (0.28 * peak); // Romein's measured efficiency
                                           // scatter traffic: kernel slice + grid RMW, ~90 % cache-resident
    let bytes = (nw * nw) as f64 * (8.0 + 16.0) * 0.1;
    let t_mem = bytes / 320e9;
    // per-visibility work-distribution / atomic overhead
    let t_overhead = 4e-9;
    1.0 / (t_compute.max(t_mem) + t_overhead) / 1e6
}

fn main() {
    let scale = bench_scale();
    println!("Fig. 16: WPG vs IDG throughput vs W-kernel size, scale {scale}\n");
    let nws = [4usize, 8, 16, 24, 32, 48, 64];

    // ---------- modeled PASCAL ----------
    println!("modeled PASCAL (MVis/s):");
    println!(
        "{:>5} {:>6} {:>12} {:>12} {:>8}",
        "N_W", "Ñ", "WPG", "IDG", "IDG/WPG"
    );
    let mut rows = Vec::new();
    let mut modeled = Vec::new();
    for &nw in &nws {
        let n = idg_subgrid_for(nw);
        let wpg = wpg_pascal_mvis(nw);
        let idg = idg_pascal_mvis(n);
        println!("{nw:>5} {n:>6} {wpg:>12.1} {idg:>12.1} {:>8.2}", idg / wpg);
        modeled.push((nw, wpg, idg));
        rows.push(format!("{nw},{n},{wpg},{idg},,"));
    }

    // shape checks on the model
    for &(nw, wpg, idg) in &modeled {
        if nw <= 16 {
            assert!(
                idg > 1.2 * wpg,
                "IDG should clearly win at N_W={nw}: {idg} vs {wpg}"
            );
        }
        if nw >= 48 {
            assert!(
                idg / wpg > 0.3 && idg / wpg < 3.0,
                "comparable at large N_W={nw}: {idg} vs {wpg}"
            );
        }
    }
    // WPG decays with kernel size; IDG is flat until the subgrid grows
    assert!(
        modeled[0].1 > 2.0 * modeled.last().unwrap().1,
        "WPG decays with N_W"
    );
    assert!(
        (modeled[0].2 - modeled[2].2).abs() / modeled[0].2 < 0.05,
        "IDG flat while Ñ stays at 24"
    );

    // ---------- measured host CPU ----------
    let ds = Dataset::representative(scale.max(10), 42).expect("representative dataset");
    let nr_vis_cap = 40_000usize;
    println!("\nmeasured host CPU (MVis/s, {nr_vis_cap} visibilities):");
    println!("{:>5} {:>6} {:>12} {:>12}", "N_W", "Ñ", "WPG", "IDG");

    // WPG input samples in wavelengths (band center)
    let f_mid = 0.5 * (ds.obs.frequencies[0] + ds.obs.frequencies[ds.obs.nr_channels() - 1]);
    let to_lambda = f_mid / SPEED_OF_LIGHT;
    let samples: Vec<WpgSample> = ds
        .uvw
        .iter()
        .zip(ds.visibilities.iter())
        .take(nr_vis_cap)
        .map(|(uvw, vis)| WpgSample {
            u: uvw.u as f64 * to_lambda,
            v: uvw.v as f64 * to_lambda,
            w: uvw.w as f64 * to_lambda * 0.1, // keep within small w range
            vis: *vis,
        })
        .collect();

    for &nw in &nws {
        // WPG measured (512² grid keeps the per-thread partial grids cheap)
        let kernels = WKernelCache::build(nw, 8, 200.0, 400.0, ds.obs.image_size);
        let mut grid = idg::Grid::<f32>::new(512);
        let start = Instant::now();
        wpg_grid(&mut grid, &samples, &kernels, ds.obs.image_size / 4.0);
        let wpg_rate = samples.len() as f64 / start.elapsed().as_secs_f64() / 1e6;

        // IDG measured with the matching subgrid size
        let n = idg_subgrid_for(nw);
        let obs = Observation::builder()
            .stations(ds.obs.nr_stations)
            .timesteps(ds.obs.nr_timesteps)
            .channels(ds.obs.nr_channels(), ds.obs.frequencies[0], 1e6)
            .grid_size(ds.obs.grid_size)
            .subgrid_size(n)
            .kernel_size(nw.min(n - 1).max(5))
            .aterm_interval(ds.obs.aterm_interval)
            .image_size(ds.obs.image_size)
            .build()
            .expect("observation");
        let proxy = Proxy::new(Backend::CpuOptimized, obs.clone()).expect("proxy");
        let plan = proxy.plan(&ds.uvw).expect("plan");
        let aterms = ATerms::identity(&obs);
        let start = Instant::now();
        let (_, report) = proxy
            .grid(&plan, &ds.uvw, &ds.visibilities, &aterms)
            .expect("grid");
        let idg_rate = report.counts.visibilities as f64 / start.elapsed().as_secs_f64() / 1e6;

        println!("{nw:>5} {n:>6} {wpg_rate:>12.2} {idg_rate:>12.2}");
        rows.push(format!("{nw},{n},,,{wpg_rate},{idg_rate}"));
    }

    let path = write_csv(
        "fig16_wproj_comparison.csv",
        "nw,idg_subgrid,pascal_wpg_mvis,pascal_idg_mvis,host_wpg_mvis,host_idg_mvis",
        &rows,
    )
    .expect("csv");
    println!("\nwrote {}", path.display());
}
