//! Fig. 12: operation throughput for various FMA/sincos mixes.
//!
//! For ρ = #FMAs/#sincos from 0 to 256: the analytic curves of the three
//! Table I architectures (the basis of the Fig. 11 dashed ceilings) plus
//! a *measured* curve on the host CPU using the `idg-math` mix
//! microkernel. Shape to reproduce: PASCAL stays near peak as ρ drops
//! (hardware SFUs); FIJI and HASWELL degrade sharply.
//!
//! Emits both the CSV table and the JSON export the golden-file suite
//! snapshots (the wall-clock host column is masked there).

use idg_bench::{fig12_rows, fig_json, series_table, write_csv, write_results};
use idg_perf::mix::standard_rhos;
use idg_perf::{attainable_ops_per_sec, Architecture, IDG_RHO};

fn main() {
    let rhos = standard_rhos();
    let archs = Architecture::all();
    let fig_rows = fig12_rows(3_000_000);

    let names = [
        "HASWELL TOps/s",
        "FIJI TOps/s",
        "PASCAL TOps/s",
        "host 1-core TOps/s",
    ];
    let series: Vec<(String, Vec<(f64, f64)>)> = names
        .iter()
        .enumerate()
        .map(|(col, name)| {
            let points = fig_rows
                .iter()
                .enumerate()
                .map(|(i, row)| (rhos[i], row.values[col].1))
                .collect();
            (name.to_string(), points)
        })
        .collect();
    println!(
        "{}",
        series_table("Fig. 12: throughput vs rho = #FMA/#sincos", "rho", &series)
    );

    // paper-shape checks at ρ = 1 vs ρ = 256
    let frac = |arch: &Architecture, rho: f64| {
        attainable_ops_per_sec(arch, rho) / (arch.peak_tops() * 1e12)
    };
    let pascal = &archs[2];
    let fiji = &archs[1];
    let haswell = &archs[0];
    println!(
        "fractions of peak at rho=4:  PASCAL {:.2}  FIJI {:.2}  HASWELL {:.2}",
        frac(pascal, 4.0),
        frac(fiji, 4.0),
        frac(haswell, 4.0)
    );
    println!(
        "fractions of peak at rho=17: PASCAL {:.2}  FIJI {:.2}  HASWELL {:.2}",
        frac(pascal, IDG_RHO),
        frac(fiji, IDG_RHO),
        frac(haswell, IDG_RHO)
    );
    assert!(frac(pascal, 4.0) > 0.6, "PASCAL stays high at low rho");
    assert!(frac(fiji, 4.0) < 0.5, "FIJI degrades at low rho");
    assert!(frac(haswell, 4.0) < 0.3, "HASWELL degrades at low rho");

    // the measured host curve must also *rise* with ρ (software sincos)
    let host = &series[3].1;
    let host_low = host.iter().find(|(r, _)| *r == 1.0).unwrap().1;
    let host_high = host.iter().find(|(r, _)| *r == 256.0).unwrap().1;
    assert!(
        host_high > 1.5 * host_low,
        "host curve should rise with rho: {host_low} -> {host_high}"
    );

    let rows: Vec<String> = fig_rows
        .iter()
        .enumerate()
        .map(|(i, row)| {
            format!(
                "{},{},{},{},{}",
                rhos[i], row.values[0].1, row.values[1].1, row.values[2].1, row.values[3].1
            )
        })
        .collect();
    let path = write_csv(
        "fig12_sincos_mix.csv",
        "rho,haswell_tops,fiji_tops,pascal_tops,host_measured_tops",
        &rows,
    )
    .expect("csv");
    println!("wrote {}", path.display());
    let json = write_results(
        "fig12_sincos_mix.json",
        &fig_json("fig12_sincos_mix", &fig_rows, false),
    )
    .expect("json");
    println!("wrote {}", json.display());
}
