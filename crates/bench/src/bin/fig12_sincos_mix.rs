//! Fig. 12: operation throughput for various FMA/sincos mixes.
//!
//! For ρ = #FMAs/#sincos from 0 to 256: the analytic curves of the three
//! Table I architectures (the basis of the Fig. 11 dashed ceilings) plus
//! a *measured* curve on the host CPU using the `idg-math` mix
//! microkernel. Shape to reproduce: PASCAL stays near peak as ρ drops
//! (hardware SFUs); FIJI and HASWELL degrade sharply.

use idg_bench::{series_table, write_csv};
use idg_perf::mix::{measure_host_mix, standard_rhos};
use idg_perf::{attainable_ops_per_sec, Architecture, IDG_RHO};

fn main() {
    let rhos = standard_rhos();
    let archs = Architecture::all();

    let mut series = Vec::new();
    for arch in &archs {
        let curve: Vec<(f64, f64)> = rhos
            .iter()
            .map(|&r| (r, attainable_ops_per_sec(arch, r) / 1e12))
            .collect();
        series.push((format!("{} TOps/s", arch.nickname), curve));
    }

    // measured host curve (wall-clock, single core)
    let iterations = 3_000_000u64;
    let host: Vec<(f64, f64)> = rhos
        .iter()
        .map(|&r| {
            let rate = measure_host_mix(r.round() as u32, iterations);
            (r, rate / 1e12)
        })
        .collect();
    series.push(("host 1-core TOps/s".into(), host.clone()));

    println!(
        "{}",
        series_table("Fig. 12: throughput vs rho = #FMA/#sincos", "rho", &series)
    );

    // paper-shape checks at ρ = 1 vs ρ = 256
    let frac = |arch: &Architecture, rho: f64| {
        attainable_ops_per_sec(arch, rho) / (arch.peak_tops() * 1e12)
    };
    let pascal = &archs[2];
    let fiji = &archs[1];
    let haswell = &archs[0];
    println!(
        "fractions of peak at rho=4:  PASCAL {:.2}  FIJI {:.2}  HASWELL {:.2}",
        frac(pascal, 4.0),
        frac(fiji, 4.0),
        frac(haswell, 4.0)
    );
    println!(
        "fractions of peak at rho=17: PASCAL {:.2}  FIJI {:.2}  HASWELL {:.2}",
        frac(pascal, IDG_RHO),
        frac(fiji, IDG_RHO),
        frac(haswell, IDG_RHO)
    );
    assert!(frac(pascal, 4.0) > 0.6, "PASCAL stays high at low rho");
    assert!(frac(fiji, 4.0) < 0.5, "FIJI degrades at low rho");
    assert!(frac(haswell, 4.0) < 0.3, "HASWELL degrades at low rho");

    // the measured host curve must also *rise* with ρ (software sincos)
    let host_low = host.iter().find(|(r, _)| *r == 1.0).unwrap().1;
    let host_high = host.iter().find(|(r, _)| *r == 256.0).unwrap().1;
    assert!(
        host_high > 1.5 * host_low,
        "host curve should rise with rho: {host_low} -> {host_high}"
    );

    let rows: Vec<String> = rhos
        .iter()
        .enumerate()
        .map(|(i, r)| {
            format!(
                "{r},{},{},{},{}",
                series[0].1[i].1, series[1].1[i].1, series[2].1[i].1, series[3].1[i].1
            )
        })
        .collect();
    let path = write_csv(
        "fig12_sincos_mix.csv",
        "rho,haswell_tops,fiji_tops,pascal_tops,host_measured_tops",
        &rows,
    )
    .expect("csv");
    println!("wrote {}", path.display());
}
