//! Fig. 9: distribution of runtime for one full imaging cycle.
//!
//! One imaging cycle = gridding + degridding (each with its subgrid
//! FFTs and adder/splitter, plus transfers on the GPUs). The paper's
//! finding to reproduce: "For all architectures, runtime is dominated
//! by the gridder and degridder kernels (more than 93 %)", and the GPUs
//! complete the cycle almost an order of magnitude faster than HASWELL.

use idg_bench::{
    ascii_stacked_bars, bench_scale, benchmark_dataset, full_scale_runs, host_measured_run,
    write_csv,
};

fn main() {
    let scale = bench_scale();
    let ds = benchmark_dataset(scale);
    println!(
        "Fig. 9: runtime distribution, scale {scale} ({} baselines × {} steps × {} channels)\n",
        ds.obs.nr_baselines(),
        ds.obs.nr_timesteps,
        ds.obs.nr_channels()
    );

    let mut runs = vec![host_measured_run(&ds)];
    runs.extend(full_scale_runs(&ds));
    let mut bars = Vec::new();
    let mut rows = Vec::new();
    let mut haswell_total = 0.0;
    let mut pascal_total = 0.0;
    for run in &runs {
        let g = &run.gridding;
        let d = &run.degridding;
        // On the GPUs transfers overlap with kernels (triple buffering,
        // Fig. 7), so the cycle decomposes as kernels + fft + adder +
        // *exposed* transfer time (pipeline makespan minus compute).
        let compute = g.kernel_seconds
            + d.kernel_seconds
            + g.fft_seconds
            + d.fft_seconds
            + g.adder_seconds
            + d.adder_seconds;
        let total = g.total_seconds + d.total_seconds;
        let exposed_transfer = (total - compute).max(0.0);
        let segments = vec![
            ("gridder", g.kernel_seconds),
            ("degridder", d.kernel_seconds),
            ("fft", g.fft_seconds + d.fft_seconds),
            ("adder+splitter", g.adder_seconds + d.adder_seconds),
            ("exposed transfer", exposed_transfer),
        ];
        let kernel_share = (g.kernel_seconds + d.kernel_seconds) / total;
        rows.push(format!(
            "{},{},{},{},{},{},{:.4}",
            run.name,
            g.kernel_seconds,
            d.kernel_seconds,
            g.fft_seconds + d.fft_seconds,
            g.adder_seconds + d.adder_seconds,
            exposed_transfer,
            kernel_share
        ));
        if run.name.contains("HASWELL") {
            haswell_total = total;
        }
        if run.name.contains("PASCAL") {
            pascal_total = total;
        }
        bars.push((run.name.clone(), segments));
    }
    println!("{}", ascii_stacked_bars(&bars, "s"));

    // paper-shape checks
    for run in &runs {
        let g = &run.gridding;
        let d = &run.degridding;
        let total = g.total_seconds + d.total_seconds;
        let share = (g.kernel_seconds + d.kernel_seconds) / total;
        println!("{:<22} kernel share {:>5.1} %", run.name, 100.0 * share);
        if run.arch.is_some() {
            assert!(
                share > 0.80,
                "{}: gridder+degridder expected to dominate (paper: >93 % at \
                 full scale; overlap hides transfers), got {share}",
                run.name
            );
        }
    }
    let speedup = haswell_total / pascal_total;
    println!("\nPASCAL vs HASWELL cycle speedup: {speedup:.1}x (paper: ~an order of magnitude)");
    assert!(
        speedup > 4.0,
        "GPU should be much faster than the CPU model"
    );

    let path = write_csv(
        "fig09_runtime_distribution.csv",
        "backend,gridder_s,degridder_s,fft_s,adder_s,transfer_s,kernel_share",
        &rows,
    )
    .expect("csv");
    println!("wrote {}", path.display());
}
