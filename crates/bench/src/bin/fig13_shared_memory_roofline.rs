//! Fig. 13: roofline with respect to shared memory.
//!
//! Re-plots the GPU kernels against the shared-memory bandwidth instead
//! of device memory. Shape to reproduce: both GPU kernels sit close to
//! the shared-memory bandwidth bound (which explains PASCAL's sub-peak
//! gridder in Fig. 11), with the degridder at lower intensity than the
//! gridder (it stages pixels + geometry rather than visibilities).

use idg_bench::{bench_scale, benchmark_dataset, full_scale_runs, write_csv};
use idg_perf::roofline::MemoryLevel;
use idg_perf::{Roofline, RooflinePoint};

fn main() {
    let scale = bench_scale();
    let ds = benchmark_dataset(scale);
    println!("Fig. 13: shared-memory roofline, scale {scale}\n");

    let runs = full_scale_runs(&ds);
    let mut rows = Vec::new();
    for run in runs.iter().filter(|r| {
        r.arch
            .as_ref()
            .is_some_and(|a| a.kind == idg_perf::ArchKind::Gpu)
    }) {
        let arch = run.arch.clone().unwrap();
        let mut roofline = Roofline::new(arch.clone(), MemoryLevel::Shared);
        let g = RooflinePoint::from_counts(
            "gridder",
            &run.gridding.counts,
            run.gridding.kernel_seconds,
            MemoryLevel::Shared,
        );
        let d = RooflinePoint::from_counts(
            "degridder",
            &run.degridding.counts,
            run.degridding.kernel_seconds,
            MemoryLevel::Shared,
        );
        roofline.push(g.clone());
        roofline.push(d.clone());
        print!("{}", roofline.render());

        // shape checks: intensity of order 1, close to the shared bound
        for p in [&g, &d] {
            assert!(
                (0.3..2.0).contains(&p.intensity),
                "{} {} shared intensity {}",
                arch.nickname,
                p.name,
                p.intensity
            );
            let bound_fraction = p.achieved_tops / roofline.hardware_ceiling(p.intensity);
            assert!(
                bound_fraction > 0.5,
                "{} {} should be close to the shared-memory bound: {bound_fraction}",
                arch.nickname,
                p.name
            );
            rows.push(format!(
                "{},{},{},{},{}",
                arch.nickname, p.name, p.intensity, p.achieved_tops, bound_fraction
            ));
        }
        assert!(
            d.intensity < g.intensity,
            "degridder stages more shared bytes per op than the gridder"
        );
        println!();
    }

    let path = write_csv(
        "fig13_shared_memory_roofline.csv",
        "arch,kernel,shared_intensity,achieved_tops,shared_bound_fraction",
        &rows,
    )
    .expect("csv");
    println!("wrote {}", path.display());
}
