//! SM occupancy of the paper's kernel launch configurations.
//!
//! Prints the occupancy calculation behind Sec. V-C's tuned thread-block
//! sizes (gridder 192/256, degridder 128/256 on PASCAL/FIJI) — the
//! residency that lets the SMs hide sincos and shared-memory latency.

use idg_bench::write_csv;
use idg_gpusim::{occupancy, Device, KernelResources};

fn main() {
    println!("SM occupancy of the IDG kernels (Sec. V-C launch configurations)\n");
    println!(
        "{:<8} {:<10} {:>8} {:>10} {:>10} {:>9}  {:<12}",
        "device", "kernel", "threads", "blocks/SM", "thr/SM", "occupancy", "limited by"
    );

    let mut rows = Vec::new();
    for device in [Device::pascal(), Device::fiji()] {
        for (name, res) in [
            ("gridder", KernelResources::gridder(&device)),
            ("degridder", KernelResources::degridder(&device)),
        ] {
            let occ = occupancy(&device, &res);
            println!(
                "{:<8} {:<10} {:>8} {:>10} {:>10} {:>8.0}%  {:<12?}",
                device.arch.nickname,
                name,
                res.threads_per_block,
                occ.blocks_per_sm,
                occ.threads_per_sm,
                100.0 * occ.fraction,
                occ.limited_by
            );
            rows.push(format!(
                "{},{},{},{},{},{:.3},{:?}",
                device.arch.nickname,
                name,
                res.threads_per_block,
                occ.blocks_per_sm,
                occ.threads_per_sm,
                occ.fraction,
                occ.limited_by
            ));
            assert!(occ.fraction > 0.2, "paper configurations keep the SMs busy");
        }
    }

    let path = write_csv(
        "occupancy_report.csv",
        "device,kernel,threads_per_block,blocks_per_sm,threads_per_sm,occupancy,limited_by",
        &rows,
    )
    .expect("csv");
    println!("\nwrote {}", path.display());
}
