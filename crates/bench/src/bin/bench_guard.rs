//! Wall-clock benchmark guard.
//!
//! Runs the measured host pass (`host_measured_run`, optimized CPU
//! kernels under an observability session) at the current
//! `IDG_BENCH_SCALE`, exports `results/BENCH_gridder.json` and
//! `results/BENCH_degridder.json` (the wall-clock `kernel-cache` row
//! plus a deterministic modeled `fleet` row carrying the degraded-mode
//! accounting), and compares the measured wall-clock against the
//! committed baselines under `crates/bench/baselines/`.
//!
//! Exit is non-zero when either pass regresses by more than the
//! tolerance (`IDG_BENCH_TOLERANCE`, default 0.20 = 20%) against the
//! baseline's `kernel-cache` row at the same scale. Scales with no
//! committed baseline row only report (first runs on a new scale are
//! not failures). `IDG_BENCH_BASELINE_DIR` overrides the baseline
//! directory (the CI smoke points it at a runner-local warmup export so
//! the guard compares like with like instead of against another
//! machine's clock).

use idg_bench::{bench_json, bench_pass_row, bench_row_value, bench_scale, benchmark_dataset};

fn tolerance() -> f64 {
    std::env::var("IDG_BENCH_TOLERANCE")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0.20)
}

fn baseline_dir() -> std::path::PathBuf {
    std::env::var_os("IDG_BENCH_BASELINE_DIR").map_or_else(
        || std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("baselines"),
        std::path::PathBuf::from,
    )
}

fn main() {
    let scale = bench_scale();
    let tol = tolerance();
    let ds = benchmark_dataset(scale);
    let run = idg_bench::host_measured_run(&ds);
    // deterministic fleet run with one injected OOM: the exported
    // `fleet` row documents the degraded-mode accounting (devices,
    // re-dispatches, ladder rungs, breaker trips) at this scale
    let fleet = idg_bench::fleet_chaos_run(&ds);

    let mut failed = false;
    for (pass, report, fleet_report) in [
        ("gridder", &run.gridding, &fleet.gridding),
        ("degridder", &run.degridding, &fleet.degridding),
    ] {
        let rows = vec![
            bench_pass_row("kernel-cache", scale, report),
            idg_bench::fleet_bench_row(scale, fleet_report),
        ];
        let json = bench_json(pass, &rows, false);
        idg_obs::validate_json(&json).expect("BENCH export is valid JSON");
        let out = idg_bench::write_results(&format!("BENCH_{pass}.json"), &json)
            .expect("write BENCH export");
        println!(
            "{pass:<10} scale={scale} vis={} total_s={:.4} mvis_s={:.3} -> {}",
            report.counts.visibilities,
            report.total_seconds,
            report.mvis_per_sec(),
            out.display()
        );
        if let Some(stats) = &fleet_report.fleet {
            println!(
                "{pass:<10} fleet devices={} redispatched={} degradation_steps={} \
                 breaker_trips={} makespan_s={:.4}",
                stats.nr_devices,
                stats.redispatched_jobs,
                stats.degradation_steps,
                stats.breaker_trips,
                fleet_report.total_seconds
            );
        }

        let baseline_path = baseline_dir().join(format!("BENCH_{pass}.json"));
        let Ok(baseline) = std::fs::read_to_string(&baseline_path) else {
            println!(
                "{pass:<10} no committed baseline at {}",
                baseline_path.display()
            );
            continue;
        };
        idg_obs::validate_json(&baseline)
            .unwrap_or_else(|e| panic!("baseline {} invalid: {e}", baseline_path.display()));
        let Some(reference) = bench_row_value(&baseline, "kernel-cache", scale, "total_s_wall")
        else {
            println!("{pass:<10} baseline has no kernel-cache row at scale {scale}; skipping");
            continue;
        };
        let ratio = report.total_seconds / reference;
        let verdict = if ratio > 1.0 + tol {
            failed = true;
            "REGRESSION"
        } else {
            "ok"
        };
        println!(
            "{pass:<10} baseline_s={reference:.4} ratio={ratio:.3} (tolerance +{:.0}%) {verdict}",
            tol * 100.0
        );
        // the committed seed row documents what the kernel cache bought
        if let Some(seed) = bench_row_value(&baseline, "seed", scale, "total_s_wall") {
            println!(
                "{pass:<10} seed_s={seed:.4} speedup_vs_seed={:.2}x",
                seed / report.total_seconds
            );
        }
    }

    if failed {
        eprintln!("bench_guard: wall-clock regression beyond tolerance");
        std::process::exit(1);
    }
}
