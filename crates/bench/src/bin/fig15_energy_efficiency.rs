//! Fig. 15: energy efficiency of the gridder and degridder kernels.
//!
//! Numbers to reproduce (GFlops/W, flops exclude sin/cos): PASCAL ≈ 32
//! (gridder) / 23 (degridder); FIJI ≈ 13; HASWELL ≈ 1.5. Absolute values
//! depend on the power model; the ordering and the order-of-magnitude
//! CPU↔GPU gap are the asserted shape.

use idg_bench::{bench_scale, benchmark_dataset, full_scale_runs, within_factor, write_csv};
use idg_perf::EnergyModel;

fn main() {
    let scale = bench_scale();
    let ds = benchmark_dataset(scale);
    println!("Fig. 15: energy efficiency (GFlops/W), scale {scale}\n");
    println!("{:<22} {:>14} {:>14}", "backend", "gridder", "degridder");

    let runs = full_scale_runs(&ds);
    let mut rows = Vec::new();
    let mut results = std::collections::HashMap::new();
    for run in runs.iter().filter(|r| r.arch.is_some()) {
        let arch = run.arch.clone().unwrap();
        let energy = EnergyModel::new(arch.clone());
        let g_eff = energy.gflops_per_watt(&run.gridding.counts, run.gridding.kernel_seconds, 1.0);
        let d_eff =
            energy.gflops_per_watt(&run.degridding.counts, run.degridding.kernel_seconds, 1.0);
        println!("{:<22} {g_eff:>14.1} {d_eff:>14.1}", run.name);
        rows.push(format!("{},{g_eff},{d_eff}", arch.nickname));
        results.insert(arch.nickname, (g_eff, d_eff));
    }

    let (p_g, p_d) = results["PASCAL"];
    let (f_g, _) = results["FIJI"];
    let (h_g, _) = results["HASWELL"];
    println!(
        "\npaper: PASCAL 32/23, FIJI ~13, HASWELL ~1.5 GFlops/W\n\
         model: PASCAL {p_g:.1}/{p_d:.1}, FIJI {f_g:.1}, HASWELL {h_g:.1}"
    );

    // shape checks: ordering and rough magnitudes
    assert!(p_g > f_g && f_g > h_g, "ordering PASCAL > FIJI > HASWELL");
    assert!(p_g > p_d, "gridder more efficient than degridder on PASCAL");
    assert!(
        within_factor(p_g, 32.0, 0.5, 2.0),
        "PASCAL gridder {p_g} vs paper 32"
    );
    assert!(
        within_factor(f_g, 13.0, 0.5, 2.0),
        "FIJI gridder {f_g} vs paper 13"
    );
    assert!(
        within_factor(h_g, 1.5, 0.5, 2.5),
        "HASWELL gridder {h_g} vs paper 1.5"
    );
    assert!(
        p_g / h_g > 8.0,
        "order-of-magnitude CPU->GPU efficiency gap"
    );

    let path = write_csv(
        "fig15_energy_efficiency.csv",
        "arch,gridder_gflops_per_watt,degridder_gflops_per_watt",
        &rows,
    )
    .expect("csv");
    println!("wrote {}", path.display());
}
