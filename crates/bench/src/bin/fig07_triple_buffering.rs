//! Fig. 7: triple buffering overlaps transfers with kernel execution.
//!
//! Runs the stream pipeline simulator for 1-, 2- and 3-buffer
//! configurations over a sequence of work groups with the benchmark's
//! modeled phase durations and prints the resulting timelines plus the
//! achieved overlap. Also runs one *observed* triple-buffered pass and
//! exports its span tree as a Chrome `trace_event` timeline
//! (`results/fig07_trace.json`, loadable in `chrome://tracing`) — the
//! structured replacement for the ASCII timeline below.

use idg::{Backend, Proxy};
use idg_bench::{bench_scale, benchmark_dataset, plan_for, write_csv, write_results};
use idg_gpusim::{kernel_time, transfer_time, Device, PipelineSim};
use idg_perf::gridder_counts;

fn main() {
    let scale = bench_scale();
    let ds = benchmark_dataset(scale);
    let plan = plan_for(&ds);
    let device = Device::pascal();
    let nr_chan = ds.obs.nr_channels();

    // per-work-group modeled durations; pick the group size so the
    // pipeline has plenty of jobs to overlap even at small scales
    let group_size = (plan.nr_subgrids() / 16).max(1);
    let jobs: Vec<(f64, f64, f64)> = plan
        .work_groups(group_size)
        .map(|group| {
            let counts = gridder_counts(group, ds.obs.subgrid_size);
            let in_bytes: u64 = group
                .iter()
                .map(|i| (i.nr_timesteps * (nr_chan * 32 + 12)) as u64)
                .sum();
            let out_bytes: u64 = group
                .iter()
                .map(|_| (4 * ds.obs.subgrid_size * ds.obs.subgrid_size * 8) as u64)
                .sum();
            (
                transfer_time(&device, in_bytes),
                kernel_time(&device, &counts),
                transfer_time(&device, out_bytes),
            )
        })
        .take(24)
        .collect();

    println!(
        "Fig. 7: stream pipeline on PASCAL ({} work groups of {group_size})\n",
        jobs.len()
    );
    let mut rows = Vec::new();
    let mut makespans = Vec::new();
    for nr_buffers in [1usize, 2, 3] {
        let mut sim = PipelineSim::new(nr_buffers);
        for &(t_in, t_k, t_out) in &jobs {
            sim.submit(t_in, t_k, t_out);
        }
        let makespan = sim.makespan();
        let serial = sim.serial_time();
        println!(
            "{} buffer set(s): makespan {:.4} s, serial {:.4} s, overlap gain {:.2}x",
            nr_buffers,
            makespan,
            serial,
            serial / makespan
        );
        if nr_buffers == 3 {
            println!("\ntimeline (each digit = work group id mod 10):");
            println!("{}", sim.render(100));
        }
        rows.push(format!("{nr_buffers},{makespan},{serial}"));
        makespans.push(makespan);
    }

    assert!(
        makespans[2] < makespans[0],
        "triple buffering must beat single buffering"
    );
    let path = write_csv(
        "fig07_triple_buffering.csv",
        "nr_buffers,makespan_s,serial_s",
        &rows,
    )
    .expect("write csv");
    println!("wrote {}", path.display());

    // Chrome-trace export of a real observed pass on the same device
    // model: one job span per work group, one stage span per engine
    // (HtoD / Compute / DtoH), kernel sub-spans inside each Compute.
    let mut proxy = Proxy::new(Backend::GpuPascal, ds.obs.clone()).expect("proxy");
    proxy.work_group_size = group_size;
    let (_, report, trace) = proxy
        .grid_observed(&plan, &ds.uvw, &ds.visibilities, &ds.aterms)
        .expect("observed grid");
    let trace_path = write_results("fig07_trace.json", &idg_obs::chrome_trace_json(&trace))
        .expect("write trace");
    let nr_jobs = trace.spans.iter().filter(|s| s.cat == "job").count();
    println!(
        "wrote {} ({} spans, {nr_jobs} jobs, {} kernel invocations; open in chrome://tracing)",
        trace_path.display(),
        trace.spans.len(),
        report.metrics.as_ref().map_or(0, |m| m.gridder.invocations)
    );
}
