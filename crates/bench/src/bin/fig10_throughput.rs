//! Fig. 10: throughput for gridding and degridding (MVisibilities/s).
//!
//! Shape to reproduce: both GPUs an order of magnitude above the
//! HASWELL model, gridding slightly faster than degridding on PASCAL.
//!
//! The host row runs under an observability session, so its throughput
//! comes from the *measured* kernel counter snapshot (self-validated
//! against the analytic model) rather than a recomputation. Emits both
//! the CSV table and the JSON export the golden-file suite snapshots.

use idg_bench::{bench_scale, benchmark_dataset, fig10_rows, fig_json, write_csv, write_results};

fn main() {
    let scale = bench_scale();
    let ds = benchmark_dataset(scale);
    println!("Fig. 10: gridding/degridding throughput, scale {scale}\n");
    println!(
        "{:<22} {:>18} {:>18}",
        "backend", "gridding MVis/s", "degridding MVis/s"
    );

    let fig_rows = fig10_rows(&ds);
    let mut rows = Vec::new();
    let mut haswell = (0.0f64, 0.0f64);
    let mut pascal = (0.0f64, 0.0f64);
    for row in &fig_rows {
        let (g, d) = (row.values[0].1, row.values[1].1);
        println!("{:<22} {g:>18.2} {d:>18.2}", row.label);
        rows.push(format!("{},{g},{d}", row.label));
        if row.label.contains("HASWELL") {
            haswell = (g, d);
        }
        if row.label.contains("PASCAL") {
            pascal = (g, d);
        }
    }

    println!(
        "\nPASCAL/HASWELL: gridding {:.1}x, degridding {:.1}x (paper: ~an order of magnitude)",
        pascal.0 / haswell.0,
        pascal.1 / haswell.1
    );
    assert!(pascal.0 / haswell.0 > 4.0);
    assert!(pascal.1 / haswell.1 > 4.0);

    let path = write_csv(
        "fig10_throughput.csv",
        "backend,gridding_mvis_s,degridding_mvis_s",
        &rows,
    )
    .expect("csv");
    println!("wrote {}", path.display());
    let json = write_results(
        "fig10_throughput.json",
        &fig_json("fig10_throughput", &fig_rows, false),
    )
    .expect("json");
    println!("wrote {}", json.display());
}
