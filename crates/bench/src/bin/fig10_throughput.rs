//! Fig. 10: throughput for gridding and degridding (MVisibilities/s).
//!
//! Shape to reproduce: both GPUs an order of magnitude above the
//! HASWELL model, gridding slightly faster than degridding on PASCAL.

use idg_bench::{bench_scale, benchmark_dataset, full_scale_runs, host_measured_run, write_csv};

fn main() {
    let scale = bench_scale();
    let ds = benchmark_dataset(scale);
    println!("Fig. 10: gridding/degridding throughput, scale {scale}\n");
    println!(
        "{:<22} {:>18} {:>18}",
        "backend", "gridding MVis/s", "degridding MVis/s"
    );

    let mut runs = vec![host_measured_run(&ds)];
    runs.extend(full_scale_runs(&ds));
    let mut rows = Vec::new();
    let mut haswell = (0.0f64, 0.0f64);
    let mut pascal = (0.0f64, 0.0f64);
    for run in &runs {
        let g = run.gridding.mvis_per_sec();
        let d = run.degridding.mvis_per_sec();
        println!("{:<22} {g:>18.2} {d:>18.2}", run.name);
        rows.push(format!("{},{g},{d}", run.name));
        if run.name.contains("HASWELL") {
            haswell = (g, d);
        }
        if run.name.contains("PASCAL") {
            pascal = (g, d);
        }
    }

    println!(
        "\nPASCAL/HASWELL: gridding {:.1}x, degridding {:.1}x (paper: ~an order of magnitude)",
        pascal.0 / haswell.0,
        pascal.1 / haswell.1
    );
    assert!(pascal.0 / haswell.0 > 4.0);
    assert!(pascal.1 / haswell.1 > 4.0);

    let path = write_csv(
        "fig10_throughput.csv",
        "backend,gridding_mvis_s,degridding_mvis_s",
        &rows,
    )
    .expect("csv");
    println!("wrote {}", path.display());
}
