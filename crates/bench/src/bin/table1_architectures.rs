//! Table I: the three architectures used in the comparison.
//!
//! Prints the paper's hardware table from the `idg-perf` descriptors and
//! the derived quantities the analysis uses (FMA rate, machine balance,
//! ρ = 17 ceiling).

use idg_bench::write_csv;
use idg_perf::{attainable_ops_per_sec, Architecture, IDG_RHO};

fn main() {
    println!("TABLE I: The three architectures used in this comparison");
    println!(
        "{:<22} {:<4} {:<11} {:>5}  {:<17} {:>5}  {:>5}  {:>6}  {:>4}",
        "model", "type", "arch", "GHz", "core config=#FPUs", "TF/s", "mem", "GB/s", "TDP"
    );
    let mut rows = Vec::new();
    for arch in Architecture::all() {
        println!("{}", arch.table_row());
        let ceiling = attainable_ops_per_sec(&arch, IDG_RHO) / 1e12;
        rows.push(format!(
            "{},{},{},{},{},{},{},{},{:.3}",
            arch.nickname,
            arch.model,
            arch.clock_ghz,
            arch.total_fpus(),
            arch.peak_tflops,
            arch.mem_bw_gbps,
            arch.shared_bw_gbps,
            arch.tdp_w,
            ceiling
        ));
    }

    println!("\nderived (Sec. VI-C):");
    for arch in Architecture::all() {
        let ceiling = attainable_ops_per_sec(&arch, IDG_RHO) / 1e12;
        println!(
            "  {:<8} machine balance {:>6.1} ops/B   rho=17 ceiling {:>5.2} TOps/s ({:>4.1}% of peak)",
            arch.nickname,
            arch.peak_tops() * 1e12 / (arch.mem_bw_gbps * 1e9),
            ceiling,
            100.0 * ceiling / arch.peak_tops()
        );
    }

    let path = write_csv(
        "table1_architectures.csv",
        "nickname,model,clock_ghz,fpus,peak_tflops,mem_bw_gbps,shared_bw_gbps,tdp_w,rho17_ceiling_tops",
        &rows,
    )
    .expect("write csv");
    println!("\nwrote {}", path.display());
}
