//! Fig. 14: distribution of energy consumption for one imaging cycle.
//!
//! Shape to reproduce: energy concentrates in the gridder/degridder
//! kernels (they dominate runtime), and the GPUs beat the CPU by an
//! order of magnitude in total energy — "even true when the power
//! consumption of the host is taken into account".

use idg_bench::{ascii_stacked_bars, bench_scale, benchmark_dataset, full_scale_runs, write_csv};
use idg_perf::EnergyModel;

fn main() {
    let scale = bench_scale();
    let ds = benchmark_dataset(scale);
    println!("Fig. 14: energy distribution for one imaging cycle, scale {scale}\n");

    let runs = full_scale_runs(&ds);
    let mut bars = Vec::new();
    let mut rows = Vec::new();
    let mut haswell_total = 0.0f64;
    let mut pascal_total = 0.0f64;
    for run in runs.iter().filter(|r| r.arch.is_some()) {
        let arch = run.arch.clone().unwrap();
        let energy = EnergyModel::new(arch.clone());
        let g = &run.gridding;
        let d = &run.degridding;

        // split device energy over stages proportionally to their time
        let split = |r: &idg::ExecutionReport| {
            let device = r
                .device_energy_j
                .unwrap_or_else(|| energy.device_energy(r.total_seconds, 1.0));
            let host = r.host_energy_j.unwrap_or(0.0);
            let serial = r.serial_seconds().max(1e-12);
            (
                device * r.kernel_seconds / serial,
                device * (r.fft_seconds + r.adder_seconds + r.transfer_seconds) / serial,
                host,
            )
        };
        let (g_kernel, g_rest, g_host) = split(g);
        let (d_kernel, d_rest, d_host) = split(d);
        let segments = vec![
            ("gridder", g_kernel),
            ("degridder", d_kernel),
            ("other", g_rest + d_rest),
            ("host", g_host + d_host),
        ];
        let total: f64 = segments.iter().map(|(_, v)| v).sum();
        rows.push(format!(
            "{},{},{},{},{},{}",
            arch.nickname,
            g_kernel,
            d_kernel,
            g_rest + d_rest,
            g_host + d_host,
            total
        ));
        if arch.nickname == "HASWELL" {
            haswell_total = total;
        }
        if arch.nickname == "PASCAL" {
            pascal_total = total;
        }
        bars.push((run.name.clone(), segments));
    }
    println!("{}", ascii_stacked_bars(&bars, "J"));

    let ratio = haswell_total / pascal_total;
    println!(
        "total energy HASWELL/PASCAL: {ratio:.1}x (paper: GPUs win by an order of magnitude,\n\
         including host power)"
    );
    assert!(ratio > 4.0, "GPU cycle should use far less energy");

    let path = write_csv(
        "fig14_energy_distribution.csv",
        "arch,gridder_j,degridder_j,other_j,host_j,total_j",
        &rows,
    )
    .expect("csv");
    println!("wrote {}", path.display());
}
