//! Fig. 8: the (u,v)-plane of the benchmark data set.
//!
//! Generates the SKA1-low-like uvw tracks and renders the uv-plane
//! density (the characteristic dense core plus earth-rotation ellipses),
//! plus coverage statistics. With `IDG_BENCH_SCALE=1` this is the
//! paper's full 150-station, 8192-time-step configuration (uv samples
//! are streamed, not stored).

use idg::telescope::{Layout, UvwGenerator};
use idg::types::{Baseline, Observation, SPEED_OF_LIGHT};
use idg_bench::{bench_scale, write_csv};

fn main() {
    let scale = bench_scale();
    let nr_stations = (150 / scale).max(4);
    // Keep the paper's full 8192 s of earth rotation (the track shape),
    // subsampling the time axis by `scale` to bound the sample count.
    let nr_timesteps = 8192usize;
    let time_stride = scale.max(1);
    let obs = Observation::builder()
        .stations(nr_stations)
        .timesteps(nr_timesteps)
        .channels(16, 150e6, 1e6)
        .grid_size(2048)
        .subgrid_size(24)
        .image_size(0.05)
        .build()
        .expect("observation");
    let layout = Layout::ska1_low(nr_stations, 1_000.0, 18_000.0, 42);
    let generator = UvwGenerator::representative(&layout, obs.integration_time);
    let baselines = Baseline::all(nr_stations);

    // density histogram over the uv-plane (both hermitian halves)
    const BINS: usize = 64;
    let mut density = vec![0u64; BINS * BINS];
    // scale the histogram to the layout's own extent (the grid allows
    // more headroom than the 18 km arms use at this band)
    let max_uv = layout.max_baseline() * obs.frequencies[15] / SPEED_OF_LIGHT * 1.05;
    let f_mid = 0.5 * (obs.frequencies[0] + obs.frequencies[obs.nr_channels() - 1]);
    let lambda_scale = f_mid / SPEED_OF_LIGHT;
    let mut nr_samples = 0u64;
    let mut max_seen = 0.0f64;
    for (bl_idx, bl) in baselines.iter().enumerate() {
        let _ = bl_idx;
        for t in (0..obs.nr_timesteps).step_by(time_stride) {
            let uvw = generator.uvw(*bl, t);
            for (u, v) in [
                (uvw.u as f64 * lambda_scale, uvw.v as f64 * lambda_scale),
                (-uvw.u as f64 * lambda_scale, -uvw.v as f64 * lambda_scale),
            ] {
                max_seen = max_seen.max(u.abs().max(v.abs()));
                let bx = ((u / max_uv + 1.0) / 2.0 * BINS as f64) as isize;
                let by = ((v / max_uv + 1.0) / 2.0 * BINS as f64) as isize;
                if (0..BINS as isize).contains(&bx) && (0..BINS as isize).contains(&by) {
                    density[by as usize * BINS + bx as usize] += 1;
                    nr_samples += 1;
                }
            }
        }
    }

    println!(
        "Fig. 8: (u,v)-plane, {} stations, {} time steps, band center {:.0} MHz",
        nr_stations,
        nr_timesteps,
        f_mid / 1e6
    );
    println!("max |u|,|v| seen: {max_seen:.0} wavelengths (grid supports ±{max_uv:.0})\n");

    // ASCII density map
    let max_count = *density.iter().max().unwrap_or(&1) as f64;
    let shades = [' ', '.', ':', '-', '=', '+', '*', '#', '%', '@'];
    for y in (0..BINS).rev() {
        let mut line = String::new();
        for x in 0..BINS {
            let c = density[y * BINS + x] as f64;
            let level = if c == 0.0 {
                0
            } else {
                1 + ((c.ln_1p() / max_count.ln_1p()) * (shades.len() - 2) as f64) as usize
            };
            line.push(shades[level.min(shades.len() - 1)]);
        }
        println!("|{line}|");
    }

    let filled = density.iter().filter(|c| **c > 0).count();
    println!(
        "\ncoverage: {}/{} histogram cells hit ({:.1} %), {} uv samples",
        filled,
        BINS * BINS,
        100.0 * filled as f64 / (BINS * BINS) as f64,
        nr_samples
    );

    let rows: Vec<String> = (0..BINS * BINS)
        .filter(|i| density[*i] > 0)
        .map(|i| format!("{},{},{}", i % BINS, i / BINS, density[i]))
        .collect();
    let path = write_csv("fig08_uv_coverage.csv", "bin_x,bin_y,count", &rows).expect("csv");
    println!("wrote {}", path.display());
}
