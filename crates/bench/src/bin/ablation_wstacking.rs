//! Ablation: subgrid size vs number of W-planes (Sec. IV / VI-E).
//!
//! "Furthermore, larger subgrids (e.g. up to 64 × 64) can be used in
//! connection with W-stacking to dramatically limit the number of
//! required W-planes" — this binary quantifies the trade on a wide-field
//! configuration:
//!
//! * a subgrid of `Ñ` pixels can absorb residual w until the w-term's
//!   effective support `w·image_size²` (pixels) exhausts the margin
//!   `Ñ − kernel`, so `w_step(Ñ) ∝ Ñ − kernel`;
//! * fewer planes mean fewer grid FFTs and less grid memory, but the
//!   gridder's arithmetic grows with `Ñ²`.

use idg_bench::write_csv;
use idg_gpusim::{kernel_time, Device};
use idg_perf::gridder_counts;
use idg_plan::WorkItem;
use idg_types::Baseline;

fn main() {
    // wide-field configuration where w matters
    let image_size = 0.2f64; // ~11.5°
    let w_max = 2000.0f64; // wavelengths
    let kernel = 9usize;
    let grid_size = 4096usize;
    let device = Device::pascal();

    println!(
        "Ablation: subgrid size vs W-planes (image {image_size} rad, |w| <= {w_max} lambda)\n"
    );
    println!(
        "{:>4} {:>12} {:>9} {:>14} {:>14} {:>14} {:>12}",
        "Ñ", "w_step (λ)", "planes", "gridder ops/vis", "kernel (model)", "plane FFTs", "grid mem"
    );

    let mut rows = Vec::new();
    let mut results = Vec::new();
    for n in [24usize, 32, 48, 64] {
        // residual-w budget: half the post-kernel margin, in pixels,
        // converted back through support ≈ w·image² px
        let margin_px = (n - kernel) as f64 / 2.0;
        let w_step = margin_px / (image_size * image_size) * 2.0;
        let nr_planes = ((2.0 * w_max / w_step).ceil() as usize).max(1);

        // per-visibility gridder cost at this subgrid size
        let item = WorkItem {
            baseline_index: 0,
            baseline: Baseline::new(0, 1),
            time_offset: 0,
            nr_timesteps: 128,
            channel_offset: 0,
            nr_channels: 16,
            aterm_index: 0,
            coord_x: 0,
            coord_y: 0,
            w_plane: 0,
        };
        let items = vec![item; 64];
        let counts = gridder_counts(&items, n);
        let ops_per_vis = counts.total_ops() as f64 / counts.visibilities as f64;
        let kernel_s = kernel_time(&device, &counts);

        // per-plane overhead: one full-grid FFT each (5·G²·log2 G² flops)
        let g = grid_size as f64;
        let fft_flops_per_plane = 2.0 * g * 5.0 * g * g.log2() * 4.0;
        let plane_fft_s =
            nr_planes as f64 * fft_flops_per_plane / (device.arch.peak_tops() * 1e12 / 3.0);
        let grid_mem_gb = nr_planes as f64 * 4.0 * g * g * 8.0 / 1e9;

        println!(
            "{n:>4} {w_step:>12.0} {nr_planes:>9} {ops_per_vis:>14.0} {kernel_s:>12.2e} s {plane_fft_s:>12.2e} s {grid_mem_gb:>10.1} GB",
        );
        rows.push(format!(
            "{n},{w_step},{nr_planes},{ops_per_vis},{kernel_s},{plane_fft_s},{grid_mem_gb}"
        ));
        results.push((n, nr_planes, ops_per_vis, grid_mem_gb));
    }

    // the paper's trade: larger subgrids dramatically reduce planes…
    assert!(
        results[0].1 >= 3 * results[3].1,
        "24² needs many more planes than 64²"
    );
    // …at quadratically growing arithmetic
    assert!(
        results[3].2 > 5.0 * results[0].2,
        "64² costs ≫ 24² per visibility"
    );
    // and W-stacking memory shrinks with subgrid size
    assert!(results[3].3 < results[0].3);

    println!(
        "\n24² subgrids need {}x more w-planes (and {}x more grid memory) than 64²;",
        results[0].1 / results[3].1,
        (results[0].3 / results[3].3).round()
    );
    println!(
        "64² subgrids cost {:.1}x more gridder operations per visibility.",
        results[3].2 / results[0].2
    );

    let path = write_csv(
        "ablation_wstacking.csv",
        "subgrid,w_step_lambda,nr_planes,ops_per_vis,kernel_s,plane_fft_s,grid_mem_gb",
        &rows,
    )
    .expect("csv");
    println!("wrote {}", path.display());
}
