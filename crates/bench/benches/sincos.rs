//! Criterion micro-benchmarks of the sincos substrate — the "supporting
//! mathematical software" whose throughput sets the Fig. 11/12 ceilings —
//! plus the ρ-mix kernel at the paper's sweep points.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use idg::math::mix::mix_kernel;
use idg::math::{sincos_batch, Accuracy};

fn bench_sincos_batch(c: &mut Criterion) {
    let n = 4096usize;
    let xs: Vec<f32> = (0..n)
        .map(|i| (i as f32 * 0.37) % 9000.0 - 4500.0)
        .collect();
    let mut s = vec![0.0f32; n];
    let mut cos = vec![0.0f32; n];

    let mut group = c.benchmark_group("sincos_batch");
    group.throughput(Throughput::Elements(n as u64));
    for (name, acc) in [
        ("high_libm", Accuracy::High),
        ("medium_svml_analogue", Accuracy::Medium),
        ("fast_cuda_analogue", Accuracy::Fast),
    ] {
        group.bench_function(name, |b| {
            b.iter(|| sincos_batch(&xs, &mut s, &mut cos, acc));
        });
    }
    group.finish();
}

fn bench_mix(c: &mut Criterion) {
    let iterations = 100_000u64;
    let mut group = c.benchmark_group("fma_sincos_mix");
    for rho in [0u32, 1, 4, 17, 64] {
        let ops = (2 * rho as u64 + 2) * iterations;
        group.throughput(Throughput::Elements(ops));
        group.bench_with_input(BenchmarkId::from_parameter(rho), &rho, |b, &rho| {
            b.iter(|| mix_kernel(rho, iterations, Accuracy::Medium));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_sincos_batch, bench_mix);
criterion_main!(benches);
