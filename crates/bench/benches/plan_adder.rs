//! Criterion micro-benchmarks of the execution-plan generator and the
//! adder/splitter data movement.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use idg::kernels::{add_subgrids, split_subgrids, KernelCache, SubgridArray};
use idg::telescope::{Layout, UvwGenerator};
use idg::types::{Grid, Observation};
use idg_plan::Plan;

fn setup() -> (Observation, Vec<idg::Uvw>) {
    let obs = Observation::builder()
        .stations(12)
        .timesteps(128)
        .channels(8, 150e6, 1e6)
        .grid_size(512)
        .subgrid_size(24)
        .kernel_size(9)
        .aterm_interval(64)
        .image_size(0.05)
        .build()
        .unwrap();
    let layout = Layout::uniform(12, 2500.0, 3);
    let uvw = UvwGenerator::representative(&layout, 1.0).generate(&obs);
    (obs, uvw)
}

fn bench_plan(c: &mut Criterion) {
    let (obs, uvw) = setup();
    let mut group = c.benchmark_group("plan");
    group.throughput(Throughput::Elements(obs.nr_visibilities() as u64));
    group.bench_function("greedy_partition", |b| {
        b.iter(|| Plan::create(&obs, &uvw).unwrap());
    });
    group.finish();
}

fn bench_adder_splitter(c: &mut Criterion) {
    let (obs, uvw) = setup();
    let plan = Plan::create(&obs, &uvw).unwrap();
    let mut subgrids = SubgridArray::new(plan.nr_subgrids(), obs.subgrid_size);
    for (i, v) in subgrids.as_mut_slice().iter_mut().enumerate() {
        *v = idg::Cf32::new((i % 11) as f32, (i % 5) as f32);
    }
    let pixels = (plan.nr_subgrids() * 4 * obs.subgrid_size * obs.subgrid_size) as u64;

    let mut group = c.benchmark_group("adder_splitter");
    group.throughput(Throughput::Elements(pixels));
    group.sample_size(20);
    group.bench_function("adder_row_parallel", |b| {
        let mut grid = Grid::<f32>::new(obs.grid_size);
        let cache = KernelCache::new();
        b.iter(|| add_subgrids(&mut grid, &plan.items, &subgrids, &cache).unwrap());
    });
    group.bench_function("splitter_subgrid_parallel", |b| {
        let grid = Grid::<f32>::new(obs.grid_size);
        let mut out = SubgridArray::new(plan.nr_subgrids(), obs.subgrid_size);
        let cache = KernelCache::new();
        b.iter(|| split_subgrids(&grid, &plan.items, &mut out, &cache).unwrap());
    });
    group.finish();
}

criterion_group!(benches, bench_plan, bench_adder_splitter);
criterion_main!(benches);
