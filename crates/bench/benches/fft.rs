//! Criterion micro-benchmarks of the FFT substrate: the two transform
//! shapes IDG actually uses (batched 24² subgrid FFTs, one 2048²-class
//! grid FFT) plus the planner's radix paths.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use idg::fft::{Direction, Fft2d, FftPlan};
use idg::kernels::{fft_subgrids, FftNorm, SubgridArray};
use idg::types::Cf32;

fn bench_1d(c: &mut Criterion) {
    let mut group = c.benchmark_group("fft_1d");
    for n in [24usize, 64, 101, 2048] {
        let plan = FftPlan::<f32>::new(n);
        let mut data: Vec<Cf32> = (0..n)
            .map(|i| Cf32::new((i as f32 * 0.1).sin(), 0.0))
            .collect();
        let mut scratch = vec![Cf32::zero(); plan.scratch_len()];
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| plan.process_with_scratch(&mut data, &mut scratch, Direction::Forward));
        });
    }
    group.finish();
}

fn bench_subgrid_batch(c: &mut Criterion) {
    let mut group = c.benchmark_group("fft_subgrids");
    group.sample_size(20);
    for count in [16usize, 128] {
        let mut subgrids = SubgridArray::new(count, 24);
        for (i, v) in subgrids.as_mut_slice().iter_mut().enumerate() {
            *v = Cf32::new((i % 13) as f32, (i % 7) as f32);
        }
        group.throughput(Throughput::Elements((count * 4 * 24 * 24) as u64));
        group.bench_with_input(BenchmarkId::from_parameter(count), &count, |b, _| {
            b.iter(|| fft_subgrids(&mut subgrids, Direction::Forward, FftNorm::None));
        });
    }
    group.finish();
}

fn bench_grid_fft(c: &mut Criterion) {
    let mut group = c.benchmark_group("fft_grid");
    group.sample_size(10);
    let n = 512usize;
    let fft = Fft2d::<f32>::new(n);
    let mut plane: Vec<Cf32> = (0..n * n)
        .map(|i| Cf32::new((i % 17) as f32, 0.0))
        .collect();
    group.throughput(Throughput::Elements((n * n) as u64));
    group.bench_function("512x512", |b| {
        b.iter(|| fft.process_grid(&mut plane, Direction::Forward));
    });
    group.finish();
}

criterion_group!(benches, bench_1d, bench_subgrid_batch, bench_grid_fft);
criterion_main!(benches);
