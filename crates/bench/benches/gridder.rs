//! Criterion micro-benchmarks of the gridder kernel variants.
//!
//! Reports per-pair cost (one pair = one visibility × pixel = 17 FMAs +
//! 1 sincos, the paper's inner-loop unit) for the reference, optimized
//! CPU and simulated-GPU gridders, plus the sincos accuracy ablation of
//! the CPU path.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use idg::kernels::{gridder_cpu, gridder_reference, KernelCache, KernelData, SubgridArray};
use idg::math::Accuracy;
use idg::telescope::{Dataset, IdentityATerm, Layout, SkyModel};
use idg::types::Observation;
use idg_gpusim::{kernels::gridder_gpu, Device};
use idg_plan::Plan;

fn setup() -> (Dataset, Plan, Vec<f32>) {
    let obs = Observation::builder()
        .stations(6)
        .timesteps(32)
        .channels(8, 150e6, 1e6)
        .grid_size(512)
        .subgrid_size(24)
        .kernel_size(9)
        .aterm_interval(32)
        .image_size(0.05)
        .build()
        .unwrap();
    let layout = Layout::uniform(6, 1500.0, 7);
    let sky = SkyModel::random(&obs, 4, 0.5, 9);
    let ds = Dataset::simulate(obs, &layout, sky, &IdentityATerm);
    let plan = Plan::create(&ds.obs, &ds.uvw).unwrap();
    let taper = idg::math::spheroidal_2d(ds.obs.subgrid_size);
    (ds, plan, taper)
}

fn bench_gridders(c: &mut Criterion) {
    let (ds, plan, taper) = setup();
    let data = KernelData {
        obs: &ds.obs,
        uvw: &ds.uvw,
        visibilities: &ds.visibilities,
        aterms: &ds.aterms,
        taper: &taper,
    };
    let pairs =
        plan.nr_gridded_visibilities() as u64 * (ds.obs.subgrid_size * ds.obs.subgrid_size) as u64;

    let mut group = c.benchmark_group("gridder");
    group.throughput(Throughput::Elements(pairs));
    group.sample_size(10);

    group.bench_function("reference_f64", |b| {
        let mut subgrids = SubgridArray::new(plan.nr_subgrids(), ds.obs.subgrid_size);
        b.iter(|| gridder_reference(&data, &plan.items, &mut subgrids));
    });
    for (name, acc) in [
        ("cpu_medium", Accuracy::Medium),
        ("cpu_fast", Accuracy::Fast),
    ] {
        group.bench_function(BenchmarkId::new("optimized", name), |b| {
            let mut subgrids = SubgridArray::new(plan.nr_subgrids(), ds.obs.subgrid_size);
            let cache = KernelCache::new();
            b.iter(|| gridder_cpu(&data, &plan.items, &mut subgrids, acc, &cache));
        });
    }
    group.bench_function("gpu_mapping_pascal", |b| {
        let device = Device::pascal();
        let mut subgrids = SubgridArray::new(plan.nr_subgrids(), ds.obs.subgrid_size);
        let cache = KernelCache::new();
        b.iter(|| gridder_gpu(&data, &plan.items, &mut subgrids, &device, &cache));
    });
    group.finish();
}

criterion_group!(benches, bench_gridders);
criterion_main!(benches);
