//! Criterion micro-benchmarks of the W-projection baseline: kernel
//! computation cost and gridding throughput vs support size (the
//! measured side of Fig. 16).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use idg::types::{Cf32, Grid, Visibility};
use idg_wproj::gridder::{wpg_grid, WKernelCache, WpgSample};
use idg_wproj::WKernel;

fn samples(n: usize) -> Vec<WpgSample> {
    let one = Cf32::new(1.0, 0.0);
    (0..n)
        .map(|i| {
            let ang = i as f64 * 0.37;
            let r = 200.0 + (i % 700) as f64;
            WpgSample {
                u: r * ang.cos(),
                v: r * ang.sin(),
                w: (i % 5) as f64 * 60.0,
                vis: Visibility {
                    pols: [one, Cf32::zero(), Cf32::zero(), one],
                },
            }
        })
        .collect()
}

fn bench_wkernel_compute(c: &mut Criterion) {
    let mut group = c.benchmark_group("wkernel_compute");
    group.sample_size(10);
    for nw in [8usize, 16, 32] {
        group.bench_with_input(BenchmarkId::from_parameter(nw), &nw, |b, &nw| {
            b.iter(|| WKernel::compute(nw, 8, 300.0, 0.05));
        });
    }
    group.finish();
}

fn bench_wpg_grid(c: &mut Criterion) {
    let sample_set = samples(5_000);
    let mut group = c.benchmark_group("wpg_grid");
    group.throughput(Throughput::Elements(sample_set.len() as u64));
    group.sample_size(10);
    for nw in [8usize, 16, 32] {
        let kernels = WKernelCache::build(nw, 8, 100.0, 300.0, 0.05);
        group.bench_with_input(BenchmarkId::from_parameter(nw), &nw, |b, _| {
            let mut grid = Grid::<f32>::new(256);
            b.iter(|| wpg_grid(&mut grid, &sample_set, &kernels, 0.05));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_wkernel_compute, bench_wpg_grid);
criterion_main!(benches);
