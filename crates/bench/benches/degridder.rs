//! Criterion micro-benchmarks of the degridder kernel variants.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use idg::kernels::{
    degridder_cpu, degridder_reference, gridder_reference, KernelCache, KernelData, SubgridArray,
};
use idg::math::Accuracy;
use idg::telescope::{Dataset, IdentityATerm, Layout, SkyModel};
use idg::types::{Observation, Visibility};
use idg_gpusim::{kernels::degridder_gpu, Device};
use idg_plan::Plan;

fn setup() -> (Dataset, Plan, Vec<f32>, SubgridArray) {
    let obs = Observation::builder()
        .stations(6)
        .timesteps(32)
        .channels(8, 150e6, 1e6)
        .grid_size(512)
        .subgrid_size(24)
        .kernel_size(9)
        .aterm_interval(32)
        .image_size(0.05)
        .build()
        .unwrap();
    let layout = Layout::uniform(6, 1500.0, 7);
    let sky = SkyModel::random(&obs, 4, 0.5, 9);
    let ds = Dataset::simulate(obs, &layout, sky, &IdentityATerm);
    let plan = Plan::create(&ds.obs, &ds.uvw).unwrap();
    let taper = idg::math::spheroidal_2d(ds.obs.subgrid_size);
    let data = KernelData {
        obs: &ds.obs,
        uvw: &ds.uvw,
        visibilities: &ds.visibilities,
        aterms: &ds.aterms,
        taper: &taper,
    };
    let mut subgrids = SubgridArray::new(plan.nr_subgrids(), ds.obs.subgrid_size);
    gridder_reference(&data, &plan.items, &mut subgrids).expect("kernel run");
    (ds, plan, taper, subgrids)
}

fn bench_degridders(c: &mut Criterion) {
    let (ds, plan, taper, subgrids) = setup();
    let data = KernelData {
        obs: &ds.obs,
        uvw: &ds.uvw,
        visibilities: &ds.visibilities,
        aterms: &ds.aterms,
        taper: &taper,
    };
    let pairs =
        plan.nr_gridded_visibilities() as u64 * (ds.obs.subgrid_size * ds.obs.subgrid_size) as u64;

    let mut group = c.benchmark_group("degridder");
    group.throughput(Throughput::Elements(pairs));
    group.sample_size(10);

    group.bench_function("reference_f64", |b| {
        let mut out = vec![Visibility::<f32>::zero(); ds.obs.nr_visibilities()];
        b.iter(|| degridder_reference(&data, &plan.items, &subgrids, &mut out));
    });
    group.bench_function("optimized_cpu_medium", |b| {
        let mut out = vec![Visibility::<f32>::zero(); ds.obs.nr_visibilities()];
        let cache = KernelCache::new();
        b.iter(|| {
            degridder_cpu(
                &data,
                &plan.items,
                &subgrids,
                &mut out,
                Accuracy::Medium,
                &cache,
            )
        });
    });
    group.bench_function("gpu_mapping_pascal", |b| {
        let device = Device::pascal();
        let mut out = vec![Visibility::<f32>::zero(); ds.obs.nr_visibilities()];
        let cache = KernelCache::new();
        b.iter(|| degridder_gpu(&data, &plan.items, &subgrids, &mut out, &device, &cache));
    });
    group.finish();
}

criterion_group!(benches, bench_degridders);
criterion_main!(benches);
