//! Point-source sky models.
//!
//! The imaging cycle (Fig. 2 of the paper) iterates between a *sky model*
//! — the bright sources found so far — and the residual visibilities.
//! This module provides the model container plus seeded random sky
//! generators for tests and benchmarks.

use idg_types::Observation;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// An unpolarized point source at image-domain direction cosines `(l, m)`.
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct PointSource {
    /// Direction cosine along x (radians for small angles).
    pub l: f64,
    /// Direction cosine along y.
    pub m: f64,
    /// Flux density (Jy, arbitrary scale).
    pub flux: f64,
}

impl PointSource {
    /// The third direction cosine term `n − 1 = −(l²+m²)/(1+√(1−l²−m²))`,
    /// computed in the numerically stable form used across the workspace.
    /// (The paper's Eq. (1) uses `n = 1 − √(1−l²−m²)` with the sign folded
    /// into the exponent; we return that `n`.)
    #[inline]
    pub fn n_term(&self) -> f64 {
        let r2 = self.l * self.l + self.m * self.m;
        r2 / (1.0 + (1.0 - r2).sqrt())
    }
}

/// A collection of point sources.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct SkyModel {
    /// The sources.
    pub sources: Vec<PointSource>,
}

impl SkyModel {
    /// An empty model.
    pub fn empty() -> Self {
        Self {
            sources: Vec::new(),
        }
    }

    /// A single unit source at the phase center — the simplest
    /// end-to-end validation case (flat visibilities).
    pub fn single_center(flux: f64) -> Self {
        Self {
            sources: vec![PointSource {
                l: 0.0,
                m: 0.0,
                flux,
            }],
        }
    }

    /// `n` random sources within the inner `fraction` of the field of
    /// view of `obs`, with fluxes log-uniform in `[0.1, 10]`.
    pub fn random(obs: &Observation, n: usize, fraction: f64, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let half_fov = obs.image_size / 2.0 * fraction;
        let sources = (0..n)
            .map(|_| PointSource {
                l: rng.random_range(-half_fov..half_fov),
                m: rng.random_range(-half_fov..half_fov),
                flux: 10f64.powf(rng.random_range(-1.0..1.0)),
            })
            .collect();
        Self { sources }
    }

    /// Total flux of the model.
    pub fn total_flux(&self) -> f64 {
        self.sources.iter().map(|s| s.flux).sum()
    }

    /// Add a source (used by CLEAN when it extracts a component).
    pub fn add(&mut self, source: PointSource) {
        self.sources.push(source);
    }

    /// The brightest source, if any.
    pub fn brightest(&self) -> Option<&PointSource> {
        self.sources.iter().max_by(|a, b| a.flux.total_cmp(&b.flux))
    }

    /// Number of sources.
    pub fn len(&self) -> usize {
        self.sources.len()
    }

    /// True when the model has no sources.
    pub fn is_empty(&self) -> bool {
        self.sources.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn n_term_small_angle() {
        let s = PointSource {
            l: 1e-3,
            m: 2e-3,
            flux: 1.0,
        };
        // n ≈ (l² + m²)/2 for small angles (to O(r⁴))
        let expect = (1e-6 + 4e-6) / 2.0;
        assert!((s.n_term() - expect).abs() < 1e-11);
        // exact identity: n = 1 − sqrt(1 − l² − m²)
        let exact = 1.0 - (1.0 - 1e-6 - 4e-6f64).sqrt();
        assert!((s.n_term() - exact).abs() < 1e-15);
    }

    #[test]
    fn n_term_zero_at_center() {
        assert_eq!(
            PointSource {
                l: 0.0,
                m: 0.0,
                flux: 1.0
            }
            .n_term(),
            0.0
        );
    }

    #[test]
    fn random_sky_is_seeded_and_in_field() {
        let obs = Observation::builder()
            .stations(4)
            .timesteps(4)
            .build()
            .unwrap();
        let a = SkyModel::random(&obs, 20, 0.8, 5);
        let b = SkyModel::random(&obs, 20, 0.8, 5);
        assert_eq!(a, b);
        let half = obs.image_size / 2.0 * 0.8;
        for s in &a.sources {
            assert!(s.l.abs() <= half && s.m.abs() <= half);
            assert!((0.1..=10.0).contains(&s.flux));
        }
    }

    #[test]
    fn total_flux_and_brightest() {
        let mut sky = SkyModel::empty();
        assert!(sky.is_empty());
        assert!(sky.brightest().is_none());
        sky.add(PointSource {
            l: 0.0,
            m: 0.0,
            flux: 1.0,
        });
        sky.add(PointSource {
            l: 1e-3,
            m: 0.0,
            flux: 3.0,
        });
        assert_eq!(sky.len(), 2);
        assert!((sky.total_flux() - 4.0).abs() < 1e-12);
        assert_eq!(sky.brightest().unwrap().flux, 3.0);
    }

    #[test]
    fn single_center_source() {
        let sky = SkyModel::single_center(2.5);
        assert_eq!(sky.len(), 1);
        assert_eq!(sky.sources[0].l, 0.0);
        assert_eq!(sky.sources[0].flux, 2.5);
    }
}
