//! A-term (direction-dependent effect) models and their sampled form.
//!
//! IDG's key advantage is that A-term corrections are applied *in the
//! image domain*, per subgrid pixel (Lines 17 of Algorithm 1 / 2-3 of
//! Algorithm 2). A subgrid is a low-resolution image of the full field of
//! view, so the A-term of station `s` during A-term interval `i` is
//! sampled on the `Ñ × Ñ` subgrid pixel directions.
//!
//! [`ATermModel`] is the continuous description (evaluable at any
//! direction — used by the direct predictor to generate ground truth);
//! [`ATerms`] is its pixel-sampled form consumed by the kernels. Keeping
//! both views derived from one model is what makes the A-term round-trip
//! testable.

use idg_types::{Cf32, Complex, Jones, Observation};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// A continuous direction-dependent effect model.
pub trait ATermModel: Send + Sync {
    /// Evaluate the Jones matrix of `station` during A-term interval
    /// `interval` toward direction cosines `(l, m)`.
    fn evaluate(&self, interval: usize, station: usize, l: f64, m: f64) -> Jones<f64>;
}

/// Identity A-terms — the paper's benchmark configuration ("the A-terms
/// (for simplicity, all set to identity)", Sec. VI-A). The *cost* of the
/// correction is still paid by the kernels; only the values are trivial.
#[derive(Clone, Debug, Default)]
pub struct IdentityATerm;

impl ATermModel for IdentityATerm {
    fn evaluate(&self, _interval: usize, _station: usize, _l: f64, _m: f64) -> Jones<f64> {
        Jones::identity()
    }
}

/// Per-station diagonal complex gains, direction-independent but varying
/// per A-term interval — models slow electronic gain drift.
#[derive(Clone, Debug)]
pub struct StationGains {
    gains: Vec<(Complex<f64>, Complex<f64>)>,
    nr_stations: usize,
}

impl StationGains {
    /// Random gains near unity for `nr_stations × nr_intervals`, seeded.
    pub fn random(nr_stations: usize, nr_intervals: usize, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let gains = (0..nr_stations * nr_intervals)
            .map(|_| {
                let amp_x = rng.random_range(0.8..1.2);
                let ph_x = rng.random_range(-0.3..0.3f64);
                let amp_y = rng.random_range(0.8..1.2);
                let ph_y = rng.random_range(-0.3..0.3f64);
                (
                    Complex::new(amp_x * ph_x.cos(), amp_x * ph_x.sin()),
                    Complex::new(amp_y * ph_y.cos(), amp_y * ph_y.sin()),
                )
            })
            .collect();
        Self { gains, nr_stations }
    }
}

impl ATermModel for StationGains {
    fn evaluate(&self, interval: usize, station: usize, _l: f64, _m: f64) -> Jones<f64> {
        let (gx, gy) = self.gains[interval * self.nr_stations + station];
        Jones::diagonal(gx, gy)
    }
}

/// A Gaussian primary-beam model with per-station pointing jitter that
/// drifts per interval — a genuinely direction-*dependent* effect
/// exercising the full image-domain correction path.
#[derive(Clone, Debug)]
pub struct GaussianBeam {
    /// Beam standard deviation in direction-cosine units.
    pub sigma: f64,
    /// Pointing offsets `[interval][station] → (dl, dm)`.
    offsets: Vec<(f64, f64)>,
    nr_stations: usize,
}

impl GaussianBeam {
    /// Build a beam whose σ is `fraction` of the half field of view, with
    /// random pointing offsets up to 10 % of σ.
    pub fn new(obs: &Observation, fraction: f64, seed: u64) -> Self {
        let sigma = obs.image_size / 2.0 * fraction;
        let mut rng = StdRng::seed_from_u64(seed);
        let n = obs.nr_stations * obs.nr_aterm_intervals();
        let offsets = (0..n)
            .map(|_| {
                (
                    rng.random_range(-0.1..0.1) * sigma,
                    rng.random_range(-0.1..0.1) * sigma,
                )
            })
            .collect();
        Self {
            sigma,
            offsets,
            nr_stations: obs.nr_stations,
        }
    }
}

impl ATermModel for GaussianBeam {
    fn evaluate(&self, interval: usize, station: usize, l: f64, m: f64) -> Jones<f64> {
        let (dl, dm) = self.offsets[interval * self.nr_stations + station];
        let r2 = (l - dl).powi(2) + (m - dm).powi(2);
        let amp = (-r2 / (2.0 * self.sigma * self.sigma)).exp();
        Jones::scalar(Complex::new(amp, 0.0))
    }
}

/// Pixel-sampled A-terms: `[interval][station][y][x] → Jones<f32>`,
/// the layout the gridder/degridder kernels consume.
#[derive(Clone, Debug)]
pub struct ATerms {
    data: Vec<Jones<f32>>,
    nr_stations: usize,
    nr_intervals: usize,
    subgrid_size: usize,
}

impl ATerms {
    /// Sample `model` on the subgrid pixel directions of `obs`.
    ///
    /// Pixel `(y, x)` of a subgrid sees direction
    /// `l = (x + 0.5 − Ñ/2)·image_size/Ñ` (and likewise `m` from `y`) —
    /// the same `compute_l` convention the kernels use.
    pub fn sample(model: &dyn ATermModel, obs: &Observation) -> Self {
        let n = obs.subgrid_size;
        let nr_intervals = obs.nr_aterm_intervals();
        let nr_stations = obs.nr_stations;
        let mut data = Vec::with_capacity(nr_intervals * nr_stations * n * n);
        for interval in 0..nr_intervals {
            for station in 0..nr_stations {
                for y in 0..n {
                    let m = (y as f64 + 0.5 - n as f64 / 2.0) * obs.image_size / n as f64;
                    for x in 0..n {
                        let l = (x as f64 + 0.5 - n as f64 / 2.0) * obs.image_size / n as f64;
                        let j = model.evaluate(interval, station, l, m);
                        data.push(Jones {
                            xx: j.xx.cast(),
                            xy: j.xy.cast(),
                            yx: j.yx.cast(),
                            yy: j.yy.cast(),
                        });
                    }
                }
            }
        }
        Self {
            data,
            nr_stations,
            nr_intervals,
            subgrid_size: n,
        }
    }

    /// Rebuild from raw storage (deserialization); `data` must hold
    /// `nr_intervals × nr_stations × subgrid_size²` matrices in the
    /// canonical layout.
    pub fn from_raw(
        data: Vec<Jones<f32>>,
        nr_stations: usize,
        nr_intervals: usize,
        subgrid_size: usize,
    ) -> Self {
        assert_eq!(
            data.len(),
            nr_intervals * nr_stations * subgrid_size * subgrid_size,
            "raw A-term buffer has the wrong shape"
        );
        Self {
            data,
            nr_stations,
            nr_intervals,
            subgrid_size,
        }
    }

    /// Identity A-terms without sampling overhead.
    pub fn identity(obs: &Observation) -> Self {
        let n = obs.subgrid_size;
        let count = obs.nr_aterm_intervals() * obs.nr_stations * n * n;
        Self {
            data: vec![Jones::identity(); count],
            nr_stations: obs.nr_stations,
            nr_intervals: obs.nr_aterm_intervals(),
            subgrid_size: n,
        }
    }

    /// The `Ñ × Ñ` Jones plane of `station` during `interval` (row-major).
    #[inline]
    pub fn plane(&self, interval: usize, station: usize) -> &[Jones<f32>] {
        debug_assert!(interval < self.nr_intervals && station < self.nr_stations);
        let n2 = self.subgrid_size * self.subgrid_size;
        let start = (interval * self.nr_stations + station) * n2;
        &self.data[start..start + n2]
    }

    /// One Jones matrix.
    #[inline]
    pub fn at(&self, interval: usize, station: usize, y: usize, x: usize) -> Jones<f32> {
        self.plane(interval, station)[y * self.subgrid_size + x]
    }

    /// Subgrid edge length the terms were sampled on.
    pub fn subgrid_size(&self) -> usize {
        self.subgrid_size
    }

    /// Number of A-term intervals.
    pub fn nr_intervals(&self) -> usize {
        self.nr_intervals
    }

    /// Number of stations.
    pub fn nr_stations(&self) -> usize {
        self.nr_stations
    }

    /// True when every sampled matrix is the identity (lets kernels take
    /// the cheap path the paper uses for its benchmark).
    pub fn is_identity(&self) -> bool {
        let id: Jones<f32> = Jones::identity();
        self.data.iter().all(|j| *j == id)
    }
}

/// Convert a sampled f32 Jones to f64 (for reference kernels).
pub fn jones_to_f64(j: Jones<f32>) -> Jones<f64> {
    Jones {
        xx: j.xx.cast(),
        xy: j.xy.cast(),
        yx: j.yx.cast(),
        yy: j.yy.cast(),
    }
}

/// Check two Cf32 are close (test helper shared by downstream crates).
pub fn cf32_close(a: Cf32, b: Cf32, tol: f32) -> bool {
    (a - b).abs() <= tol * (1.0 + a.abs().max(b.abs()))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_obs() -> Observation {
        Observation::builder()
            .stations(4)
            .timesteps(32)
            .aterm_interval(16)
            .subgrid_size(8)
            .kernel_size(3)
            .grid_size(128)
            .channels(2, 150e6, 1e6)
            .build()
            .unwrap()
    }

    #[test]
    fn identity_model_is_identity_everywhere() {
        let m = IdentityATerm;
        let j = m.evaluate(3, 2, 0.01, -0.02);
        assert_eq!(j, Jones::identity());
    }

    #[test]
    fn sampled_identity_matches_fast_path() {
        let obs = small_obs();
        let sampled = ATerms::sample(&IdentityATerm, &obs);
        let fast = ATerms::identity(&obs);
        assert!(sampled.is_identity());
        assert!(fast.is_identity());
        assert_eq!(sampled.nr_intervals(), obs.nr_aterm_intervals());
        assert_eq!(sampled.plane(0, 0).len(), 64);
        assert_eq!(fast.data.len(), sampled.data.len());
    }

    #[test]
    fn station_gains_are_directionless_and_seeded() {
        let g1 = StationGains::random(4, 2, 9);
        let g2 = StationGains::random(4, 2, 9);
        let a = g1.evaluate(1, 2, 0.0, 0.0);
        let b = g1.evaluate(1, 2, 0.01, -0.01);
        assert_eq!(a, b, "gains must not depend on direction");
        assert_eq!(a, g2.evaluate(1, 2, 0.5, 0.5));
        // off-diagonals are zero
        assert_eq!(a.xy, Complex::zero());
        assert_eq!(a.yx, Complex::zero());
    }

    #[test]
    fn gaussian_beam_peaks_near_center_and_decays() {
        let obs = small_obs();
        let beam = GaussianBeam::new(&obs, 0.8, 1);
        let center = beam.evaluate(0, 0, 0.0, 0.0).xx.abs();
        let edge = beam.evaluate(0, 0, obs.image_size / 2.0, 0.0).xx.abs();
        assert!(center > edge, "beam must decay toward the edge");
        assert!(center > 0.9, "near-unit at center (small pointing offset)");
        assert!(edge < center * 0.9);
    }

    #[test]
    fn beam_sampling_is_not_identity() {
        let obs = small_obs();
        let sampled = ATerms::sample(&GaussianBeam::new(&obs, 0.5, 1), &obs);
        assert!(!sampled.is_identity());
        // center pixel amplitude larger than corner
        let c = sampled.at(0, 0, 4, 4).xx.abs();
        let corner = sampled.at(0, 0, 0, 0).xx.abs();
        assert!(c > corner);
    }

    #[test]
    fn plane_indexing_is_disjoint() {
        let obs = small_obs();
        let gains = StationGains::random(obs.nr_stations, obs.nr_aterm_intervals(), 3);
        let sampled = ATerms::sample(&gains, &obs);
        let a = sampled.at(0, 0, 0, 0);
        let b = sampled.at(0, 1, 0, 0);
        let c = sampled.at(1, 0, 0, 0);
        assert_ne!(a, b, "different stations differ");
        assert_ne!(a, c, "different intervals differ");
    }
}
