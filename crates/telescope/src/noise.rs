//! Thermal-noise model.
//!
//! Real visibilities carry radiometer noise. Per the radiometer
//! equation, a single-polarization visibility from stations with system
//! equivalent flux density `SEFD` integrates down to
//!
//! `σ = SEFD / √(2·Δν·τ)`
//!
//! per real/imaginary component (Δν channel width, τ integration time).
//! The simulator adds i.i.d. Gaussian noise of that σ to every
//! polarization; imaging then averages it down by √N_vis — the
//! sensitivity relation the integration test checks.

use idg_types::{Cf32, Observation, Visibility};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Noise parameters.
#[derive(Copy, Clone, Debug)]
pub struct NoiseModel {
    /// System equivalent flux density, Jy (LOFAR-ish: ~2000–4000 Jy per
    /// station at 150 MHz; SKA1-low stations are far more sensitive).
    pub sefd_jy: f64,
    /// RNG seed.
    pub seed: u64,
}

impl NoiseModel {
    /// Per-component noise σ (Jy) for one visibility sample of `obs`.
    pub fn sigma(&self, obs: &Observation) -> f64 {
        let delta_nu = if obs.nr_channels() > 1 {
            obs.frequencies[1] - obs.frequencies[0]
        } else {
            1e6
        };
        self.sefd_jy / (2.0 * delta_nu * obs.integration_time).sqrt()
    }

    /// Add noise to a visibility buffer in place; returns the σ used.
    pub fn corrupt(&self, obs: &Observation, visibilities: &mut [Visibility<f32>]) -> f64 {
        let sigma = self.sigma(obs) as f32;
        let mut rng = StdRng::seed_from_u64(self.seed);
        // Box-Muller from uniform samples (keeps the dependency surface
        // to `rand`'s core API).
        let mut gauss = move || {
            let u1: f32 = rng.random_range(f32::EPSILON..1.0);
            let u2: f32 = rng.random::<f32>();
            (-2.0 * u1.ln()).sqrt() * (std::f32::consts::TAU * u2).cos()
        };
        for vis in visibilities.iter_mut() {
            for pol in &mut vis.pols {
                *pol += Cf32::new(sigma * gauss(), sigma * gauss());
            }
        }
        sigma as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use idg_types::Visibility;

    fn obs() -> Observation {
        Observation::builder()
            .stations(4)
            .timesteps(8)
            .channels(4, 150e6, 1e6)
            .grid_size(128)
            .subgrid_size(16)
            .build()
            .unwrap()
    }

    #[test]
    fn sigma_follows_radiometer_equation() {
        let o = obs();
        let m = NoiseModel {
            sefd_jy: 4000.0,
            seed: 1,
        };
        // Δν = 1 MHz, τ = 1 s → σ = 4000/√(2e6) ≈ 2.83 Jy
        assert!((m.sigma(&o) - 4000.0 / (2e6f64).sqrt()).abs() < 1e-9);
    }

    #[test]
    fn noise_statistics_match_sigma() {
        let o = obs();
        let m = NoiseModel {
            sefd_jy: 4000.0,
            seed: 2,
        };
        let mut vis = vec![Visibility::<f32>::zero(); o.nr_visibilities()];
        let sigma = m.corrupt(&o, &mut vis);

        let samples: Vec<f32> = vis
            .iter()
            .flat_map(|v| v.pols.iter())
            .flat_map(|c| [c.re, c.im])
            .collect();
        let n = samples.len() as f64;
        let mean: f64 = samples.iter().map(|s| *s as f64).sum::<f64>() / n;
        let var: f64 = samples
            .iter()
            .map(|s| (*s as f64 - mean).powi(2))
            .sum::<f64>()
            / n;
        assert!(mean.abs() < 0.1 * sigma, "zero-mean: {mean}");
        assert!(
            (var.sqrt() - sigma).abs() < 0.05 * sigma,
            "std {} vs sigma {sigma}",
            var.sqrt()
        );
    }

    #[test]
    fn corruption_is_seeded() {
        let o = obs();
        let m = NoiseModel {
            sefd_jy: 1000.0,
            seed: 3,
        };
        let mut a = vec![Visibility::<f32>::zero(); o.nr_visibilities()];
        let mut b = vec![Visibility::<f32>::zero(); o.nr_visibilities()];
        m.corrupt(&o, &mut a);
        m.corrupt(&o, &mut b);
        assert_eq!(a[5].pols, b[5].pols);
        let m2 = NoiseModel {
            sefd_jy: 1000.0,
            seed: 4,
        };
        let mut c = vec![Visibility::<f32>::zero(); o.nr_visibilities()];
        m2.corrupt(&o, &mut c);
        assert_ne!(a[5].pols, c[5].pols);
    }

    #[test]
    fn noise_adds_on_top_of_signal() {
        let o = obs();
        let m = NoiseModel {
            sefd_jy: 100.0,
            seed: 5,
        };
        let signal = Visibility::<f32>::unpolarized(10.0, 0.0);
        let mut vis = vec![signal; o.nr_visibilities()];
        m.corrupt(&o, &mut vis);
        let mean_re: f64 = vis.iter().map(|v| v.pols[0].re as f64).sum::<f64>() / vis.len() as f64;
        assert!((mean_re - 10.0).abs() < 0.1, "signal preserved: {mean_re}");
    }
}
