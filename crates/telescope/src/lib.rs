//! # idg-telescope — telescope and observation simulator
//!
//! The paper's benchmark is driven by a representative data set generated
//! from "proposed antenna coordinates for the SKA-1 low telescope"
//! (Sec. VI-A), with uvw-coordinates produced by earth-rotation synthesis
//! (the `uvwsim` coordinate generator, ref. \[27\]). We do not have the
//! proposal files, so this crate synthesizes the equivalent inputs:
//!
//! * [`layout`] — station position generators: an SKA1-low-like morphology
//!   (dense core plus log-spiral arms), a LOFAR-like layout and uniform
//!   random scatter, all seeded and deterministic;
//! * [`uvw`] — earth-rotation synthesis of (u,v,w) tracks (the uv-plane
//!   ellipses of Fig. 8) from station positions, target declination and
//!   hour-angle range;
//! * [`sky`] — point-source sky models;
//! * [`predict`] — direct (per-source DFT) visibility prediction, the
//!   ground truth that gridding/degridding accuracy is measured against;
//! * [`aterm`] — A-term (direction-dependent effect) generators: identity
//!   (the paper's benchmark setting), per-station complex gains, and a
//!   Gaussian primary-beam model for exercising the correction path;
//! * [`dataset`] — ties everything together into the in-memory
//!   visibility set consumed by the gridders.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod aterm;
pub mod dataset;
pub mod io;
pub mod layout;
pub mod noise;
pub mod predict;
pub mod sky;
pub mod uvw;

pub use aterm::{ATermModel, ATerms, GaussianBeam, IdentityATerm, StationGains};
pub use dataset::Dataset;
pub use io::{load_dataset, read_dataset, save_dataset, write_dataset};
pub use layout::{Layout, Station};
pub use noise::NoiseModel;
pub use predict::predict_visibilities;
pub use sky::{PointSource, SkyModel};
pub use uvw::UvwGenerator;
