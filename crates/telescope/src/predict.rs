//! Direct visibility prediction — the measurement-equation oracle.
//!
//! Evaluates the paper's Eq. (1) by direct summation over point sources:
//!
//! `V_pq(t, c) = Σ_s A_p(l_s, m_s) · B_s · A_qᴴ(l_s, m_s) ·
//!                e^{−2πi·(u·l_s + v·m_s + w·n_s)·ν_c/c}`
//!
//! with `B_s = flux_s · I` (unpolarized sources) and `(u,v,w)` in meters
//! scaled to wavelengths by `ν_c/c`. This is exact (no gridding, no FFT,
//! no taper) and therefore serves as the ground truth for every gridder
//! and degridder accuracy test, exactly as a DFT predictor would be used
//! to validate a production imager.

use crate::aterm::ATermModel;
use crate::sky::SkyModel;
use idg_types::{Complex, Jones, Observation, Uvw, Visibility, SPEED_OF_LIGHT};
use rayon::prelude::*;

/// Predict all visibilities of `obs` for `sky`, applying the A-terms of
/// `model` at the source directions.
///
/// `uvw` must be `[baseline-major][timestep]` in meters (the layout of
/// [`crate::UvwGenerator::generate`]); the output is
/// `[baseline][timestep][channel]`, single precision.
pub fn predict_visibilities(
    obs: &Observation,
    uvw: &[Uvw],
    model: &dyn ATermModel,
    sky: &SkyModel,
) -> Vec<Visibility<f32>> {
    assert_eq!(
        uvw.len(),
        obs.nr_baselines() * obs.nr_timesteps,
        "uvw buffer must cover all baselines and timesteps"
    );
    let nr_time = obs.nr_timesteps;
    let nr_chan = obs.nr_channels();
    let baselines = obs.baselines();

    // Precompute per-source geometry once.
    let sources: Vec<(f64, f64, f64, f64)> = sky
        .sources
        .iter()
        .map(|s| (s.l, s.m, s.n_term(), s.flux))
        .collect();

    let mut out = vec![Visibility::<f32>::zero(); baselines.len() * nr_time * nr_chan];
    out.par_chunks_mut(nr_time * nr_chan)
        .enumerate()
        .for_each(|(bl_idx, bl_out)| {
            let bl = baselines[bl_idx];
            for t in 0..nr_time {
                let uvw_m = uvw[bl_idx * nr_time + t];
                let interval = obs.aterm_index(t);
                for (c, freq) in obs.frequencies.iter().enumerate() {
                    let scale = -2.0 * std::f64::consts::PI * freq / SPEED_OF_LIGHT;
                    let mut acc = Jones::<f64>::zero();
                    for &(l, m, n, flux) in &sources {
                        let phase =
                            scale * (uvw_m.u as f64 * l + uvw_m.v as f64 * m + uvw_m.w as f64 * n);
                        let phasor = Complex::from_phase(phase);
                        let ap = model.evaluate(interval, bl.station1, l, m);
                        let aq = model.evaluate(interval, bl.station2, l, m);
                        let b = Jones::scalar(Complex::new(flux, 0.0));
                        let contrib = ap.sandwich(b, aq);
                        acc = acc.add(Jones {
                            xx: contrib.xx * phasor,
                            xy: contrib.xy * phasor,
                            yx: contrib.yx * phasor,
                            yy: contrib.yy * phasor,
                        });
                    }
                    bl_out[t * nr_chan + c] = Visibility {
                        pols: [acc.xx.cast(), acc.xy.cast(), acc.yx.cast(), acc.yy.cast()],
                    };
                }
            }
        });
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aterm::{IdentityATerm, StationGains};
    use crate::layout::Layout;
    use crate::sky::{PointSource, SkyModel};
    use crate::uvw::UvwGenerator;

    fn small_obs() -> Observation {
        Observation::builder()
            .stations(4)
            .timesteps(8)
            .aterm_interval(4)
            .channels(2, 150e6, 2e6)
            .grid_size(256)
            .subgrid_size(16)
            .build()
            .unwrap()
    }

    fn small_uvw(obs: &Observation) -> Vec<Uvw> {
        let layout = Layout::uniform(obs.nr_stations, 500.0, 7);
        UvwGenerator::representative(&layout, obs.integration_time).generate(obs)
    }

    #[test]
    fn center_source_gives_flat_visibilities() {
        let obs = small_obs();
        let uvw = small_uvw(&obs);
        let sky = SkyModel::single_center(2.0);
        let vis = predict_visibilities(&obs, &uvw, &IdentityATerm, &sky);
        assert_eq!(vis.len(), obs.nr_visibilities());
        for v in &vis {
            // source at phase center: XX = YY = flux, no phase
            assert!((v.pols[0].re - 2.0).abs() < 1e-5);
            assert!(v.pols[0].im.abs() < 1e-5);
            assert!(v.pols[1].abs() < 1e-6);
            assert!(v.pols[2].abs() < 1e-6);
            assert!((v.pols[3].re - 2.0).abs() < 1e-5);
        }
    }

    #[test]
    fn offset_source_modulates_phase_not_amplitude() {
        let obs = small_obs();
        let uvw = small_uvw(&obs);
        let sky = SkyModel {
            sources: vec![PointSource {
                l: 0.01,
                m: -0.005,
                flux: 1.5,
            }],
        };
        let vis = predict_visibilities(&obs, &uvw, &IdentityATerm, &sky);
        let mut phases_vary = false;
        let first_phase = vis[0].pols[0];
        for v in &vis {
            assert!((v.pols[0].abs() - 1.5).abs() < 1e-4, "amplitude preserved");
            if (v.pols[0] - first_phase).abs() > 1e-3 {
                phases_vary = true;
            }
        }
        assert!(phases_vary, "different baselines see different phases");
    }

    #[test]
    fn superposition_of_sources() {
        let obs = small_obs();
        let uvw = small_uvw(&obs);
        let s1 = SkyModel {
            sources: vec![PointSource {
                l: 0.008,
                m: 0.0,
                flux: 1.0,
            }],
        };
        let s2 = SkyModel {
            sources: vec![PointSource {
                l: -0.004,
                m: 0.006,
                flux: 0.5,
            }],
        };
        let both = SkyModel {
            sources: vec![s1.sources[0], s2.sources[0]],
        };
        let v1 = predict_visibilities(&obs, &uvw, &IdentityATerm, &s1);
        let v2 = predict_visibilities(&obs, &uvw, &IdentityATerm, &s2);
        let vb = predict_visibilities(&obs, &uvw, &IdentityATerm, &both);
        for i in 0..vb.len() {
            let sum = v1[i].add(v2[i]);
            for p in 0..4 {
                assert!((vb[i].pols[p] - sum.pols[p]).abs() < 1e-5);
            }
        }
    }

    #[test]
    fn phase_scales_with_frequency() {
        // For a fixed uvw in meters, the phase of the visibility scales
        // linearly with frequency.
        let obs = Observation::builder()
            .stations(2)
            .timesteps(1)
            .channels(2, 100e6, 100e6) // c1 = 2 * c0
            .grid_size(256)
            .subgrid_size(16)
            .build()
            .unwrap();
        let uvw = vec![Uvw::new(700.0, 300.0, 5.0)];
        let sky = SkyModel {
            sources: vec![PointSource {
                l: 0.004,
                m: 0.003,
                flux: 1.0,
            }],
        };
        let vis = predict_visibilities(&obs, &uvw, &IdentityATerm, &sky);
        let ph0 = (vis[0].pols[0].im as f64).atan2(vis[0].pols[0].re as f64);
        let ph1 = (vis[1].pols[0].im as f64).atan2(vis[1].pols[0].re as f64);
        // double frequency -> double phase (mod 2π)
        let expect = (2.0 * ph0).rem_euclid(std::f64::consts::TAU);
        let got = ph1.rem_euclid(std::f64::consts::TAU);
        let diff = (expect - got)
            .abs()
            .min(std::f64::consts::TAU - (expect - got).abs());
        assert!(diff < 1e-4, "phase did not scale: {ph0} -> {ph1}");
    }

    #[test]
    fn station_gains_scale_polarizations() {
        let obs = small_obs();
        let uvw = small_uvw(&obs);
        let sky = SkyModel::single_center(1.0);
        let gains = StationGains::random(obs.nr_stations, obs.nr_aterm_intervals(), 21);
        let vis = predict_visibilities(&obs, &uvw, &gains, &sky);
        let ident = predict_visibilities(&obs, &uvw, &IdentityATerm, &sky);
        // With diagonal gains: V_xx = g_p,x * conj(g_q,x) * I_xx
        let bl = obs.baselines()[0];
        let gp = gains.evaluate(0, bl.station1, 0.0, 0.0);
        let gq = gains.evaluate(0, bl.station2, 0.0, 0.0);
        let expect = gp.xx * gq.xx.conj();
        let got = vis[0].pols[0];
        let reference = ident[0].pols[0];
        assert!(
            ((got.re / reference.re) as f64 - expect.re).abs() < 1e-4,
            "gain application mismatch"
        );
    }
}
