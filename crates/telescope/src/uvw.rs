//! Earth-rotation synthesis of (u,v,w) tracks.
//!
//! As the earth rotates, each baseline sweeps an elliptical track through
//! the uv-plane (Fig. 3 and Fig. 8 of the paper). This module converts
//! station ENU positions to equatorial baseline components and evaluates
//! the standard synthesis relation (Thompson, Moran & Swenson):
//!
//! ```text
//! | u |   |  sin H         cos H        0     | | ΔX |
//! | v | = | −sin δ cos H   sin δ sin H  cos δ | | ΔY |
//! | w |   |  cos δ cos H  −cos δ sin H  sin δ | | ΔZ |
//! ```
//!
//! with hour angle `H` advancing at the sidereal rate over the
//! observation and declination `δ` of the phase center. Outputs are in
//! meters; the kernels scale to wavelengths per channel.

use crate::layout::Layout;
use idg_types::{Baseline, Observation, Uvw};

/// Sidereal angular rate, rad/s.
pub const EARTH_ROTATION_RATE: f64 = 7.292_115_9e-5;

/// Generates per-baseline, per-timestep uvw coordinates.
#[derive(Clone, Debug)]
pub struct UvwGenerator {
    /// Equatorial (X,Y,Z) positions per station, meters.
    xyz: Vec<[f64; 3]>,
    /// Phase-center declination, radians.
    declination: f64,
    /// Hour angle at the first time step, radians.
    start_hour_angle: f64,
    /// Integration time, seconds.
    integration_time: f64,
}

impl UvwGenerator {
    /// Build a generator for `layout` observed from `latitude` (rad)
    /// toward declination `declination` (rad), starting at hour angle
    /// `start_hour_angle` (rad).
    pub fn new(
        layout: &Layout,
        latitude: f64,
        declination: f64,
        start_hour_angle: f64,
        integration_time: f64,
    ) -> Self {
        let (sin_lat, cos_lat) = latitude.sin_cos();
        let xyz = layout
            .stations
            .iter()
            .map(|s| {
                [
                    -s.north * sin_lat + s.up * cos_lat,
                    s.east,
                    s.north * cos_lat + s.up * sin_lat,
                ]
            })
            .collect();
        Self {
            xyz,
            declination,
            start_hour_angle,
            integration_time,
        }
    }

    /// The paper-benchmark default: a mid-latitude site observing a field
    /// at δ = −30° starting 2 hours before transit.
    pub fn representative(layout: &Layout, integration_time: f64) -> Self {
        let latitude = -26.7f64.to_radians(); // SKA1-low site latitude
        let declination = -30.0f64.to_radians();
        let start_ha = -(2.0f64 / 24.0) * std::f64::consts::TAU;
        Self::new(layout, latitude, declination, start_ha, integration_time)
    }

    /// Hour angle at time step `t`.
    #[inline]
    fn hour_angle(&self, timestep: usize) -> f64 {
        self.start_hour_angle + EARTH_ROTATION_RATE * self.integration_time * timestep as f64
    }

    /// The uvw coordinate of `baseline` at `timestep`, meters.
    pub fn uvw(&self, baseline: Baseline, timestep: usize) -> Uvw {
        let a = self.xyz[baseline.station1];
        let b = self.xyz[baseline.station2];
        let (dx, dy, dz) = (b[0] - a[0], b[1] - a[1], b[2] - a[2]);
        let (sin_h, cos_h) = self.hour_angle(timestep).sin_cos();
        let (sin_d, cos_d) = self.declination.sin_cos();
        Uvw {
            u: (sin_h * dx + cos_h * dy) as f32,
            v: (-sin_d * cos_h * dx + sin_d * sin_h * dy + cos_d * dz) as f32,
            w: (cos_d * cos_h * dx - cos_d * sin_h * dy + sin_d * dz) as f32,
        }
    }

    /// All uvw coordinates for an observation, laid out
    /// `[baseline-major][timestep]` to match the visibility buffers.
    pub fn generate(&self, obs: &Observation) -> Vec<Uvw> {
        let baselines = obs.baselines();
        let mut out = Vec::with_capacity(baselines.len() * obs.nr_timesteps);
        for bl in &baselines {
            for t in 0..obs.nr_timesteps {
                out.push(self.uvw(*bl, t));
            }
        }
        out
    }

    /// Number of stations the generator was built for.
    pub fn nr_stations(&self) -> usize {
        self.xyz.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::{Layout, Station};

    fn two_station_layout(east: f64, north: f64) -> Layout {
        Layout::from_stations(
            "pair",
            vec![
                Station {
                    east: 0.0,
                    north: 0.0,
                    up: 0.0,
                },
                Station {
                    east,
                    north,
                    up: 0.0,
                },
            ],
        )
    }

    #[test]
    fn east_west_baseline_at_zero_ha_is_pure_u() {
        // At H = 0, δ = 0: u = ΔY = east offset, v = cosδ·ΔZ, w = cosδ·ΔX.
        let layout = two_station_layout(100.0, 0.0);
        let generator = UvwGenerator::new(&layout, 0.0, 0.0, 0.0, 1.0);
        let uvw = generator.uvw(Baseline::new(0, 1), 0);
        assert!((uvw.u - 100.0).abs() < 1e-4);
        assert!(uvw.v.abs() < 1e-4);
        assert!(uvw.w.abs() < 1e-4);
    }

    #[test]
    fn uvw_length_is_conserved() {
        // Rotation preserves baseline length.
        let layout = two_station_layout(300.0, 400.0);
        let generator = UvwGenerator::new(&layout, -0.5, -0.6, -1.0, 10.0);
        let bl = Baseline::new(0, 1);
        let len0 = generator.uvw(bl, 0).length();
        for t in [100usize, 1000, 5000] {
            let len = generator.uvw(bl, t).length();
            assert!((len - len0).abs() < 1e-2, "length drift at t={t}");
        }
        assert!((len0 as f64 - 500.0).abs() < 1e-3);
    }

    #[test]
    fn tracks_form_ellipses() {
        // Over a full sidereal day the (u,v) track of a baseline closes an
        // ellipse: u ranges symmetric, v offset by cosδ·ΔZ.
        let layout = two_station_layout(500.0, 0.0);
        let generator = UvwGenerator::new(&layout, -0.4, -0.5, 0.0, 60.0);
        let bl = Baseline::new(0, 1);
        let day_steps = (std::f64::consts::TAU / (EARTH_ROTATION_RATE * 60.0)) as usize;
        let mut min_u = f32::MAX;
        let mut max_u = f32::MIN;
        for t in 0..day_steps {
            let uvw = generator.uvw(bl, t);
            min_u = min_u.min(uvw.u);
            max_u = max_u.max(uvw.u);
        }
        assert!((min_u + max_u).abs() < 1.0, "u range symmetric around 0");
        assert!(max_u > 400.0, "u amplitude close to baseline length");
    }

    #[test]
    fn generate_layout_matches_uvw() {
        let layout = Layout::uniform(5, 1000.0, 3);
        let generator = UvwGenerator::representative(&layout, 1.0);
        let obs = Observation::builder()
            .stations(5)
            .timesteps(16)
            .channels(2, 150e6, 1e6)
            .build()
            .unwrap();
        let all = generator.generate(&obs);
        assert_eq!(all.len(), obs.nr_baselines() * obs.nr_timesteps);
        let baselines = obs.baselines();
        // spot-check layout order
        let idx = 3 * obs.nr_timesteps + 7;
        assert_eq!(all[idx], generator.uvw(baselines[3], 7));
    }

    #[test]
    fn hour_angle_advances_at_sidereal_rate() {
        let layout = two_station_layout(1.0, 0.0);
        let generator = UvwGenerator::new(&layout, 0.0, 0.0, 0.0, 1.0);
        let one_hour_steps = 3600;
        let expected = EARTH_ROTATION_RATE * 3600.0;
        assert!((generator.hour_angle(one_hour_steps) - expected).abs() < 1e-12);
    }

    #[test]
    fn antisymmetric_in_station_order() {
        // Baseline::new normalizes order, but explicit reversed stations
        // should mirror uvw.
        let layout = two_station_layout(123.0, -45.0);
        let generator = UvwGenerator::new(&layout, -0.3, -0.7, 0.5, 1.0);
        let fwd = generator.uvw(
            Baseline {
                station1: 0,
                station2: 1,
            },
            10,
        );
        let rev = generator.uvw(
            Baseline {
                station1: 1,
                station2: 0,
            },
            10,
        );
        assert_eq!(fwd.negate(), rev);
    }
}
