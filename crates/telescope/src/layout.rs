//! Station position generators.
//!
//! Positions are expressed in a local East-North-Up (ENU) tangent plane in
//! meters. The SKA1-low-like generator follows the published morphology of
//! the SKA1-low configuration: roughly half the stations in a dense
//! quasi-random core, the rest distributed along three log-spiral arms.
//! All generators are seeded, so a given `(generator, n, seed)` triple
//! always produces the same array — benchmarks are reproducible.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// A station position in the local ENU frame, meters.
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct Station {
    /// East offset (m).
    pub east: f64,
    /// North offset (m).
    pub north: f64,
    /// Height above the tangent plane (m).
    pub up: f64,
}

/// A named collection of station positions.
#[derive(Clone, Debug)]
pub struct Layout {
    /// Human-readable generator description.
    pub name: String,
    /// Station positions.
    pub stations: Vec<Station>,
}

impl Layout {
    /// SKA1-low-like layout: `n` stations, ~50 % in a dense core of radius
    /// `core_radius` m, the rest on three log-spiral arms extending to
    /// `max_radius` m.
    ///
    /// Defaults used by the workspace benchmark: 150 stations, 1 km core,
    /// 20 km arms — chosen so the longest baselines stay within the
    /// uv-extent representable by the paper's 2048²-pixel grid at the
    /// benchmark field of view.
    pub fn ska1_low(n: usize, core_radius: f64, max_radius: f64, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut stations = Vec::with_capacity(n);
        let n_core = n / 2;

        // Dense core: uniform over a disc (sqrt-radius sampling).
        for _ in 0..n_core {
            let r = core_radius * rng.random::<f64>().sqrt();
            let theta = rng.random::<f64>() * std::f64::consts::TAU;
            stations.push(Station {
                east: r * theta.cos(),
                north: r * theta.sin(),
                up: rng.random_range(-2.0..2.0),
            });
        }

        // Three log-spiral arms, stations log-spaced in radius with jitter.
        let n_arms = 3usize;
        let n_arm_stations = n - n_core;
        let b = 0.35; // spiral pitch parameter
        for i in 0..n_arm_stations {
            let arm = i % n_arms;
            // log-spaced radius from core edge to exactly max_radius at
            // the outermost station (frac ∈ (0, 1])
            let frac = (i as f64 + 1.0) / n_arm_stations as f64;
            let r = core_radius * (max_radius / core_radius).powf(frac);
            let theta0 = arm as f64 * std::f64::consts::TAU / n_arms as f64;
            let theta = theta0 + (r / core_radius).ln() / b + rng.random_range(-0.05..0.05);
            stations.push(Station {
                east: r * theta.cos() * (1.0 + rng.random_range(-0.02..0.02)),
                north: r * theta.sin() * (1.0 + rng.random_range(-0.02..0.02)),
                up: rng.random_range(-5.0..5.0),
            });
        }

        Self {
            name: format!("ska1-low-like(n={n}, seed={seed})"),
            stations,
        }
    }

    /// LOFAR-like layout: a handful of tight clusters ("superterp"-style
    /// core) plus remote stations.
    pub fn lofar_like(n: usize, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut stations = Vec::with_capacity(n);
        let n_core = (2 * n) / 3;
        for _ in 0..n_core {
            let r = 1500.0 * rng.random::<f64>().sqrt();
            let theta = rng.random::<f64>() * std::f64::consts::TAU;
            stations.push(Station {
                east: r * theta.cos(),
                north: r * theta.sin(),
                up: 0.0,
            });
        }
        for _ in n_core..n {
            let r = rng.random_range(5_000.0..30_000.0f64);
            let theta = rng.random::<f64>() * std::f64::consts::TAU;
            stations.push(Station {
                east: r * theta.cos(),
                north: r * theta.sin(),
                up: 0.0,
            });
        }
        Self {
            name: format!("lofar-like(n={n}, seed={seed})"),
            stations,
        }
    }

    /// Uniform random scatter over a disc of radius `radius` m — the
    /// simplest layout for unit tests.
    pub fn uniform(n: usize, radius: f64, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let stations = (0..n)
            .map(|_| {
                let r = radius * rng.random::<f64>().sqrt();
                let theta = rng.random::<f64>() * std::f64::consts::TAU;
                Station {
                    east: r * theta.cos(),
                    north: r * theta.sin(),
                    up: 0.0,
                }
            })
            .collect();
        Self {
            name: format!("uniform(n={n}, r={radius}m, seed={seed})"),
            stations,
        }
    }

    /// Build a layout from explicit positions.
    pub fn from_stations(name: &str, stations: Vec<Station>) -> Self {
        Self {
            name: name.to_string(),
            stations,
        }
    }

    /// Number of stations.
    pub fn len(&self) -> usize {
        self.stations.len()
    }

    /// True when the layout has no stations.
    pub fn is_empty(&self) -> bool {
        self.stations.is_empty()
    }

    /// Longest baseline length in meters.
    pub fn max_baseline(&self) -> f64 {
        let mut max = 0.0f64;
        for (i, a) in self.stations.iter().enumerate() {
            for b in &self.stations[i + 1..] {
                let de = a.east - b.east;
                let dn = a.north - b.north;
                let du = a.up - b.up;
                max = max.max((de * de + dn * dn + du * du).sqrt());
            }
        }
        max
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ska1_low_is_deterministic() {
        let a = Layout::ska1_low(150, 1000.0, 20_000.0, 42);
        let b = Layout::ska1_low(150, 1000.0, 20_000.0, 42);
        assert_eq!(a.stations, b.stations);
        assert_eq!(a.len(), 150);
    }

    #[test]
    fn different_seeds_differ() {
        let a = Layout::ska1_low(50, 1000.0, 20_000.0, 1);
        let b = Layout::ska1_low(50, 1000.0, 20_000.0, 2);
        assert_ne!(a.stations, b.stations);
    }

    #[test]
    fn ska1_low_has_core_and_arms() {
        let l = Layout::ska1_low(150, 1000.0, 20_000.0, 7);
        let r = |s: &Station| (s.east * s.east + s.north * s.north).sqrt();
        let n_core = l.stations.iter().filter(|s| r(s) <= 1_050.0).count();
        let n_far = l.stations.iter().filter(|s| r(s) > 5_000.0).count();
        assert!(n_core >= 70, "core population {n_core}");
        assert!(n_far >= 20, "arm population {n_far}");
        // everything within the arm extent (2% jitter allowance)
        assert!(l.stations.iter().all(|s| r(s) <= 20_500.0));
    }

    #[test]
    fn max_baseline_bounded_by_layout_extent() {
        let l = Layout::ska1_low(100, 1000.0, 15_000.0, 3);
        assert!(l.max_baseline() <= 2.0 * 15_300.0);
        assert!(l.max_baseline() > 15_000.0, "arms should be used");
    }

    #[test]
    fn uniform_layout_within_radius() {
        let l = Layout::uniform(64, 500.0, 9);
        assert_eq!(l.len(), 64);
        for s in &l.stations {
            assert!((s.east * s.east + s.north * s.north).sqrt() <= 500.0 + 1e-9);
        }
    }

    #[test]
    fn lofar_like_has_remote_stations() {
        let l = Layout::lofar_like(60, 11);
        let r = |s: &Station| (s.east * s.east + s.north * s.north).sqrt();
        assert!(l.stations.iter().any(|s| r(s) > 5_000.0));
        assert!(l.stations.iter().filter(|s| r(s) < 1_600.0).count() >= 30);
    }

    #[test]
    fn from_stations_round_trip() {
        let sts = vec![Station {
            east: 1.0,
            north: 2.0,
            up: 3.0,
        }];
        let l = Layout::from_stations("custom", sts.clone());
        assert_eq!(l.stations, sts);
        assert!(!l.is_empty());
        assert_eq!(Layout::from_stations("empty", vec![]).max_baseline(), 0.0);
    }
}
