//! In-memory visibility data sets.
//!
//! A [`Dataset`] bundles what the paper's execution plan and kernels
//! consume: the observation parameters, the per-baseline/timestep uvw
//! coordinates, the visibility buffer and the sampled A-terms. The
//! constructors reproduce the benchmark configurations of Sec. VI-A at
//! adjustable scale.

use crate::aterm::{ATermModel, ATerms, IdentityATerm};
use crate::layout::Layout;
use crate::predict::predict_visibilities;
use crate::sky::SkyModel;
use crate::uvw::UvwGenerator;
use idg_types::{Baseline, IdgError, Observation, Uvw, Visibility};

/// A complete in-memory observation: parameters, coordinates, data.
#[derive(Clone, Debug)]
pub struct Dataset {
    /// Observation parameters.
    pub obs: Observation,
    /// Canonical baseline list (order of all baseline-major buffers).
    pub baselines: Vec<Baseline>,
    /// uvw coordinates `[baseline][timestep]`, meters.
    pub uvw: Vec<Uvw>,
    /// Visibilities `[baseline][timestep][channel]`.
    pub visibilities: Vec<Visibility<f32>>,
    /// Sampled A-terms.
    pub aterms: ATerms,
    /// The sky model the visibilities were predicted from (if simulated).
    pub sky: SkyModel,
}

impl Dataset {
    /// Simulate a data set: generate uvw tracks for `layout`, predict
    /// visibilities for `sky` under `model`, and sample the A-terms.
    pub fn simulate(
        obs: Observation,
        layout: &Layout,
        sky: SkyModel,
        model: &dyn ATermModel,
    ) -> Self {
        assert_eq!(
            layout.len(),
            obs.nr_stations,
            "layout/observation station mismatch"
        );
        let generator = UvwGenerator::representative(layout, obs.integration_time);
        let uvw = generator.generate(&obs);
        let visibilities = predict_visibilities(&obs, &uvw, model, &sky);
        let aterms = ATerms::sample(model, &obs);
        let baselines = obs.baselines();
        Self {
            obs,
            baselines,
            uvw,
            visibilities,
            aterms,
            sky,
        }
    }

    /// The paper's benchmark shape at reduced scale: SKA1-low-like layout,
    /// identity A-terms, a random sky. `scale` divides the station count
    /// (150/scale) and time steps (8192/scale²-ish) to keep laptop-sized
    /// runs tractable while preserving the configuration structure
    /// (24² subgrids, channel count, A-term cadence).
    pub fn representative(scale: usize, seed: u64) -> Result<Self, IdgError> {
        let scale = scale.max(1);
        let nr_stations = (150 / scale).max(4);
        let nr_timesteps = (8192 / (scale * scale)).max(32);
        let aterm_interval = 256usize.min(nr_timesteps).max(1);
        let obs = Observation::builder()
            .stations(nr_stations)
            .timesteps(nr_timesteps)
            .channels(16, 150e6, 1e6)
            .grid_size(2048 / scale.min(4))
            .subgrid_size(24)
            .aterm_interval(aterm_interval)
            .image_size(0.05)
            .build()?;
        // Scale the spiral-arm extent with the grid so every baseline
        // stays representable (max |uvw| rotation-safe: the w-component
        // can reach the full baseline length, so budget for it too).
        let lambda_min = obs.min_wavelength();
        let max_baseline_m = obs.max_uv_wavelengths() * lambda_min;
        let arm_radius = (0.40 * max_baseline_m).min(18_000.0);
        let core_radius = (arm_radius / 10.0).min(1_000.0);
        let layout = Layout::ska1_low(nr_stations, core_radius, arm_radius, seed);
        let sky = SkyModel::random(&obs, 16, 0.7, seed ^ 0x5137);
        Ok(Self::simulate(obs, &layout, sky, &IdentityATerm))
    }

    /// uvw of `(baseline_index, timestep)`.
    #[inline]
    pub fn uvw_at(&self, baseline_index: usize, timestep: usize) -> Uvw {
        self.uvw[baseline_index * self.obs.nr_timesteps + timestep]
    }

    /// Visibility of `(baseline_index, timestep, channel)`.
    #[inline]
    pub fn vis_at(
        &self,
        baseline_index: usize,
        timestep: usize,
        channel: usize,
    ) -> Visibility<f32> {
        let nr_chan = self.obs.nr_channels();
        self.visibilities[(baseline_index * self.obs.nr_timesteps + timestep) * nr_chan + channel]
    }

    /// Replace the visibility buffer (e.g. with residuals); lengths must
    /// match.
    pub fn set_visibilities(&mut self, vis: Vec<Visibility<f32>>) {
        assert_eq!(vis.len(), self.visibilities.len());
        self.visibilities = vis;
    }

    /// Total number of visibilities.
    pub fn nr_visibilities(&self) -> usize {
        self.visibilities.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn representative_scales_down() {
        let ds = Dataset::representative(10, 1).expect("representative dataset");
        assert_eq!(ds.obs.nr_stations, 15);
        assert_eq!(ds.obs.subgrid_size, 24);
        assert_eq!(ds.obs.nr_channels(), 16);
        assert_eq!(ds.uvw.len(), ds.obs.nr_baselines() * ds.obs.nr_timesteps);
        assert_eq!(ds.visibilities.len(), ds.obs.nr_visibilities());
        assert!(ds.aterms.is_identity());
    }

    #[test]
    fn indexing_helpers_agree_with_layout() {
        let ds = Dataset::representative(15, 2).expect("representative dataset");
        let nr_chan = ds.obs.nr_channels();
        let bl = 3;
        let t = 5;
        let c = 7;
        assert_eq!(ds.uvw_at(bl, t), ds.uvw[bl * ds.obs.nr_timesteps + t]);
        assert_eq!(
            ds.vis_at(bl, t, c).pols,
            ds.visibilities[(bl * ds.obs.nr_timesteps + t) * nr_chan + c].pols
        );
    }

    #[test]
    fn simulation_is_seeded() {
        let a = Dataset::representative(15, 3).expect("representative dataset");
        let b = Dataset::representative(15, 3).expect("representative dataset");
        assert_eq!(a.uvw, b.uvw);
        assert_eq!(a.visibilities[0].pols, b.visibilities[0].pols);
        assert_eq!(a.sky, b.sky);
    }

    #[test]
    fn visibilities_are_finite_and_nonzero() {
        let ds = Dataset::representative(15, 4).expect("representative dataset");
        let mut power = 0.0f64;
        for v in &ds.visibilities {
            for p in v.pols {
                assert!(p.is_finite());
                power += p.norm_sqr() as f64;
            }
        }
        assert!(power > 0.0);
    }

    #[test]
    #[should_panic(expected = "station mismatch")]
    fn layout_mismatch_panics() {
        let obs = Observation::builder()
            .stations(8)
            .timesteps(16)
            .grid_size(256)
            .subgrid_size(16)
            .build()
            .unwrap();
        let layout = Layout::uniform(4, 100.0, 0);
        Dataset::simulate(obs, &layout, SkyModel::empty(), &IdentityATerm);
    }
}
