//! Binary data-set persistence.
//!
//! Real pipelines read visibilities from measurement sets; a library
//! users can adopt needs *some* interchange format so simulations can be
//! generated once and re-used across runs/benchmarks. This module
//! implements a small self-describing little-endian binary container for
//! [`Dataset`] — no external dependencies, versioned and checked on
//! load.
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! magic  "IDGDS1\0\0"                       8 bytes
//! observation block: u64 counts + f64 parameters
//! frequencies        nr_channels × f64
//! uvw                nr_baselines·nr_timesteps × 3 f32
//! visibilities       nr_vis × 4 × (f32, f32)
//! aterms             intervals·stations·N² × 8 f32
//! sky                nr_sources × 3 f64
//! ```

use crate::aterm::ATerms;
use crate::dataset::Dataset;
use crate::sky::{PointSource, SkyModel};
use idg_types::{Cf32, IdgError, Jones, Observation, Uvw, Visibility};
use std::io::{Read, Write};

const MAGIC: &[u8; 8] = b"IDGDS1\0\0";

/// Upper bound on any single header count. A corrupt (or hostile)
/// header must produce a typed error, not drive `Vec::with_capacity`
/// into an allocation abort — a header declaring `u64::MAX` channels
/// must never reach an allocator.
const MAX_HEADER_COUNT: u64 = 1 << 24;

/// Upper bound on the total element count of any derived buffer
/// (visibilities, A-term planes). Checked in `u128`, so products of
/// in-range header counts cannot overflow on the way to the check.
const MAX_TOTAL_ELEMENTS: u128 = 1 << 32;

fn io_err(e: std::io::Error) -> IdgError {
    IdgError::Io(format!("dataset i/o: {e}"))
}

/// Overflow-safe product of header counts, bounded by
/// [`MAX_TOTAL_ELEMENTS`].
fn checked_elements(factors: &[usize], what: &'static str) -> Result<usize, IdgError> {
    let total: u128 = factors.iter().map(|&f| f as u128).product();
    if total > MAX_TOTAL_ELEMENTS {
        return Err(IdgError::InvalidParameter(format!(
            "dataset header: {what} would hold {total} elements — not a plausible dataset"
        )));
    }
    Ok(total as usize)
}

struct Writer<W: Write> {
    inner: W,
}

impl<W: Write> Writer<W> {
    fn u64(&mut self, v: u64) -> Result<(), IdgError> {
        self.inner.write_all(&v.to_le_bytes()).map_err(io_err)
    }
    fn f64(&mut self, v: f64) -> Result<(), IdgError> {
        self.inner.write_all(&v.to_le_bytes()).map_err(io_err)
    }
    fn f32(&mut self, v: f32) -> Result<(), IdgError> {
        self.inner.write_all(&v.to_le_bytes()).map_err(io_err)
    }
    fn c32(&mut self, v: Cf32) -> Result<(), IdgError> {
        self.f32(v.re)?;
        self.f32(v.im)
    }
}

struct Reader<R: Read> {
    inner: R,
}

impl<R: Read> Reader<R> {
    fn u64(&mut self) -> Result<u64, IdgError> {
        let mut b = [0u8; 8];
        self.inner.read_exact(&mut b).map_err(io_err)?;
        Ok(u64::from_le_bytes(b))
    }
    /// Read a header count, rejecting implausible values *before* any
    /// allocation is sized from them.
    fn count(&mut self, what: &'static str) -> Result<usize, IdgError> {
        let v = self.u64()?;
        if v > MAX_HEADER_COUNT {
            return Err(IdgError::InvalidParameter(format!(
                "dataset header: {what} = {v} is not a plausible count"
            )));
        }
        Ok(v as usize)
    }
    fn f64(&mut self) -> Result<f64, IdgError> {
        let mut b = [0u8; 8];
        self.inner.read_exact(&mut b).map_err(io_err)?;
        Ok(f64::from_le_bytes(b))
    }
    fn f32(&mut self) -> Result<f32, IdgError> {
        let mut b = [0u8; 4];
        self.inner.read_exact(&mut b).map_err(io_err)?;
        Ok(f32::from_le_bytes(b))
    }
    fn c32(&mut self) -> Result<Cf32, IdgError> {
        Ok(Cf32::new(self.f32()?, self.f32()?))
    }
}

/// Serialize a data set to any writer.
pub fn write_dataset<W: Write>(ds: &Dataset, out: W) -> Result<(), IdgError> {
    let mut w = Writer { inner: out };
    w.inner.write_all(MAGIC).map_err(io_err)?;

    let obs = &ds.obs;
    w.u64(obs.nr_stations as u64)?;
    w.u64(obs.nr_timesteps as u64)?;
    w.u64(obs.nr_channels() as u64)?;
    w.u64(obs.grid_size as u64)?;
    w.u64(obs.subgrid_size as u64)?;
    w.u64(obs.kernel_size as u64)?;
    w.u64(obs.aterm_interval as u64)?;
    w.u64(obs.max_timesteps_per_subgrid as u64)?;
    w.f64(obs.integration_time)?;
    w.f64(obs.image_size)?;
    w.f64(obs.w_step)?;
    for f in &obs.frequencies {
        w.f64(*f)?;
    }
    for uvw in &ds.uvw {
        w.f32(uvw.u)?;
        w.f32(uvw.v)?;
        w.f32(uvw.w)?;
    }
    for vis in &ds.visibilities {
        for p in vis.pols {
            w.c32(p)?;
        }
    }
    // aterms: intervals × stations × N² Jones
    let n = obs.subgrid_size;
    for interval in 0..ds.aterms.nr_intervals() {
        for station in 0..obs.nr_stations {
            for j in ds.aterms.plane(interval, station) {
                w.c32(j.xx)?;
                w.c32(j.xy)?;
                w.c32(j.yx)?;
                w.c32(j.yy)?;
            }
        }
    }
    let _ = n;
    w.u64(ds.sky.len() as u64)?;
    for s in &ds.sky.sources {
        w.f64(s.l)?;
        w.f64(s.m)?;
        w.f64(s.flux)?;
    }
    Ok(())
}

/// Deserialize a data set from any reader.
pub fn read_dataset<R: Read>(input: R) -> Result<Dataset, IdgError> {
    let mut r = Reader { inner: input };
    let mut magic = [0u8; 8];
    r.inner.read_exact(&mut magic).map_err(io_err)?;
    if &magic != MAGIC {
        return Err(IdgError::InvalidParameter(
            "not an IDG dataset (bad magic)".into(),
        ));
    }

    let nr_stations = r.count("nr_stations")?;
    let nr_timesteps = r.count("nr_timesteps")?;
    let nr_channels = r.count("nr_channels")?;
    let grid_size = r.count("grid_size")?;
    let subgrid_size = r.count("subgrid_size")?;
    let kernel_size = r.count("kernel_size")?;
    let aterm_interval = r.count("aterm_interval")?;
    let max_t = r.count("max_timesteps_per_subgrid")?;
    let integration_time = r.f64()?;
    let image_size = r.f64()?;
    let w_step = r.f64()?;
    // bound every derived buffer (u128 math: in-range counts cannot
    // overflow on the way to the check) before sizing any allocation
    let nr_bl = nr_stations * nr_stations.saturating_sub(1) / 2;
    let nr_uvw = checked_elements(&[nr_bl, nr_timesteps], "uvw")?;
    let nr_vis = checked_elements(&[nr_bl, nr_timesteps, nr_channels], "visibilities")?;
    let nr_jones = checked_elements(
        &[nr_timesteps.max(1), nr_stations, subgrid_size, subgrid_size],
        "aterms",
    )?;
    let _ = nr_jones; // worst-case bound; the exact count is smaller
    let mut frequencies = Vec::with_capacity(nr_channels);
    for _ in 0..nr_channels {
        frequencies.push(r.f64()?);
    }

    let obs = Observation {
        nr_stations,
        nr_timesteps,
        integration_time,
        frequencies,
        grid_size,
        subgrid_size,
        image_size,
        kernel_size,
        aterm_interval,
        max_timesteps_per_subgrid: max_t,
        w_step,
    };
    obs.validate()?;

    let mut uvw = Vec::with_capacity(nr_uvw);
    for _ in 0..nr_uvw {
        uvw.push(Uvw::new(r.f32()?, r.f32()?, r.f32()?));
    }
    let mut visibilities = Vec::with_capacity(nr_vis);
    for _ in 0..nr_vis {
        visibilities.push(Visibility {
            pols: [r.c32()?, r.c32()?, r.c32()?, r.c32()?],
        });
    }

    // aterms are reconstructed through a closure-backed sampler: read all
    // Jones values, then wrap them in the ATerms container via identity +
    // overwrite.
    let n2 = subgrid_size * subgrid_size;
    let nr_intervals = obs.nr_aterm_intervals();
    let mut jones = Vec::with_capacity(nr_intervals * nr_stations * n2);
    for _ in 0..nr_intervals * nr_stations * n2 {
        jones.push(Jones {
            xx: r.c32()?,
            xy: r.c32()?,
            yx: r.c32()?,
            yy: r.c32()?,
        });
    }
    let aterms = ATerms::from_raw(jones, nr_stations, nr_intervals, subgrid_size);

    let nr_sources = r.count("nr_sources")?;
    let mut sources = Vec::with_capacity(nr_sources);
    for _ in 0..nr_sources {
        sources.push(PointSource {
            l: r.f64()?,
            m: r.f64()?,
            flux: r.f64()?,
        });
    }

    Ok(Dataset {
        baselines: obs.baselines(),
        obs,
        uvw,
        visibilities,
        aterms,
        sky: SkyModel { sources },
    })
}

/// Save a data set to a file.
pub fn save_dataset(ds: &Dataset, path: &std::path::Path) -> Result<(), IdgError> {
    let file = std::fs::File::create(path).map_err(io_err)?;
    write_dataset(ds, std::io::BufWriter::new(file))
}

/// Load a data set from a file.
pub fn load_dataset(path: &std::path::Path) -> Result<Dataset, IdgError> {
    let file = std::fs::File::open(path).map_err(io_err)?;
    read_dataset(std::io::BufReader::new(file))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aterm::GaussianBeam;
    use crate::layout::Layout;

    fn dataset() -> Dataset {
        let obs = Observation::builder()
            .stations(5)
            .timesteps(16)
            .channels(3, 150e6, 2e6)
            .grid_size(128)
            .subgrid_size(16)
            .kernel_size(5)
            .aterm_interval(8)
            .build()
            .unwrap();
        let layout = Layout::uniform(5, 600.0, 501);
        let sky = SkyModel::random(&obs, 3, 0.5, 502);
        let beam = GaussianBeam::new(&obs, 0.7, 503);
        Dataset::simulate(obs, &layout, sky, &beam)
    }

    #[test]
    fn round_trip_through_memory() {
        let ds = dataset();
        let mut buffer = Vec::new();
        write_dataset(&ds, &mut buffer).unwrap();
        let loaded = read_dataset(buffer.as_slice()).unwrap();

        assert_eq!(loaded.obs, ds.obs);
        assert_eq!(loaded.uvw, ds.uvw);
        assert_eq!(loaded.visibilities.len(), ds.visibilities.len());
        for (a, b) in loaded.visibilities.iter().zip(&ds.visibilities) {
            assert_eq!(a.pols, b.pols);
        }
        assert_eq!(loaded.sky, ds.sky);
        // aterms identical
        for i in 0..ds.aterms.nr_intervals() {
            for s in 0..ds.obs.nr_stations {
                assert_eq!(loaded.aterms.plane(i, s), ds.aterms.plane(i, s));
            }
        }
    }

    #[test]
    fn round_trip_through_file() {
        let ds = dataset();
        let dir = std::env::temp_dir().join("idg-io-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("ds.idg");
        save_dataset(&ds, &path).unwrap();
        let loaded = load_dataset(&path).unwrap();
        assert_eq!(loaded.obs, ds.obs);
        assert_eq!(loaded.uvw, ds.uvw);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn bad_magic_is_rejected() {
        let garbage = b"NOTADATASET_____".to_vec();
        assert!(matches!(
            read_dataset(garbage.as_slice()),
            Err(IdgError::InvalidParameter(_))
        ));
    }

    #[test]
    fn truncated_file_is_rejected_with_a_typed_io_error() {
        let ds = dataset();
        let mut buffer = Vec::new();
        write_dataset(&ds, &mut buffer).unwrap();
        let full = buffer.len();
        // truncation anywhere — mid-header, mid-payload, one byte short
        for keep in [7, 20, full / 2, full - 1] {
            let mut cut = buffer.clone();
            cut.truncate(keep);
            assert!(
                matches!(read_dataset(cut.as_slice()), Err(IdgError::Io(_))),
                "truncated at {keep}"
            );
        }
    }

    /// Serialize a header with the given counts and nothing else.
    fn header(counts: [u64; 8]) -> Vec<u8> {
        let mut b = Vec::new();
        b.extend_from_slice(MAGIC);
        for c in counts {
            b.extend_from_slice(&c.to_le_bytes());
        }
        for f in [1.0f64, 0.01, 0.0] {
            b.extend_from_slice(&f.to_le_bytes());
        }
        b
    }

    #[test]
    fn impossible_header_counts_do_not_attempt_the_allocation() {
        // u64::MAX channels: the reader must reject the count, not ask
        // the allocator for 2^64 f64s
        let bad = header([5, 16, u64::MAX, 128, 16, 5, 8, 8]);
        assert!(matches!(
            read_dataset(bad.as_slice()),
            Err(IdgError::InvalidParameter(msg)) if msg.contains("nr_channels")
        ));
        // a count that passes the per-field cap but whose *product*
        // explodes is caught by the overflow-safe element bound
        let m = 1u64 << 24;
        let bad = header([m, m, m, 128, 16, 5, 8, 8]);
        assert!(matches!(
            read_dataset(bad.as_slice()),
            Err(IdgError::InvalidParameter(_))
        ));
        // u64::MAX stations is equally impossible
        let bad = header([u64::MAX, 16, 3, 128, 16, 5, 8, 8]);
        assert!(matches!(
            read_dataset(bad.as_slice()),
            Err(IdgError::InvalidParameter(msg)) if msg.contains("nr_stations")
        ));
    }
}
