//! Model-aware synchronization primitives.
//!
//! Each primitive wraps its `std::sync` counterpart and, when the
//! calling thread is a model thread inside an active exploration
//! (see [`crate::Explorer::explore`]), additionally routes every
//! acquisition, wait, and notification through the cooperative
//! scheduler so they become decision points. Outside an exploration
//! the wrappers degrade to plain poison-recovering `std::sync`
//! behavior, so the same compiled code runs ordinary tests unchanged.
//!
//! All guards recover from poisoning instead of propagating it: a
//! panicking thread must not wedge its peers, and the panic itself is
//! still reported (by the model checker as a [`crate::Failure`], or by
//! the OS thread/scope in normal runs).

use crate::exec::{Execution, TId};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock, PoisonError};

/// Process-wide id well: every primitive gets a distinct identity on
/// first use (lazily, so `const fn new` stays possible for statics).
static NEXT_ID: AtomicU64 = AtomicU64::new(1);

fn fresh_id() -> u64 {
    NEXT_ID.fetch_add(1, Ordering::Relaxed)
}

fn primitive_id(slot: &OnceLock<u64>) -> u64 {
    *slot.get_or_init(fresh_id)
}

/// Model-release bookkeeping carried inside a guard: dropping it
/// releases the model-level lock (pure bookkeeping — never a decision
/// point, so guard drops can never unwind).
pub(crate) struct CoopRelease {
    exec: Arc<Execution>,
    me: TId,
    lock: u64,
    write: bool,
}

impl Drop for CoopRelease {
    fn drop(&mut self) {
        self.exec.release(self.me, self.lock, self.write);
    }
}

/// Acquire the model-level lock (a decision point), returning the
/// release token; `None` when the caller is not a model thread.
fn coop_acquire(slot: &OnceLock<u64>, write: bool) -> Option<CoopRelease> {
    let (exec, me) = crate::current()?;
    let lock = primitive_id(slot);
    exec.acquire(me, lock, write);
    Some(CoopRelease {
        exec,
        me,
        lock,
        write,
    })
}

/// A mutual-exclusion lock with the facade contract: poison-recovering
/// [`lock`](Mutex::lock), `const` construction, and model-checked
/// acquisition inside explorations.
pub struct Mutex<T: ?Sized> {
    id: OnceLock<u64>,
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// A new unlocked mutex (usable in `static` items).
    pub const fn new(value: T) -> Mutex<T> {
        Mutex {
            id: OnceLock::new(),
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consume the mutex, returning the value (poison absorbed).
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, recovering from poisoning. Inside an
    /// exploration this is a decision point.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        let coop = coop_acquire(&self.id, true);
        let g = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        MutexGuard {
            g,
            lock: self,
            coop,
        }
    }

    /// Mutable access without locking (the borrow proves exclusivity).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Mutex<T> {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.inner.fmt(f)
    }
}

/// RAII guard for [`Mutex::lock`]. Dropping releases the std lock
/// first, then the model-level lock (field order is load-bearing).
pub struct MutexGuard<'a, T: ?Sized> {
    g: std::sync::MutexGuard<'a, T>,
    lock: &'a Mutex<T>,
    coop: Option<CoopRelease>,
}

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.g
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.g
    }
}

/// A condition variable paired with the facade [`Mutex`]. Waits inside
/// an exploration park the model thread (atomically with the lock
/// release, as with a real condvar) and may be woken spuriously when
/// [`crate::Config::spurious_wakeups`] is on — which is exactly why
/// the lint insists every wait sits under a `while` re-check.
pub struct Condvar {
    id: OnceLock<u64>,
    inner: std::sync::Condvar,
}

impl Condvar {
    /// A new condvar (usable in `static` items).
    pub const fn new() -> Condvar {
        Condvar {
            id: OnceLock::new(),
            inner: std::sync::Condvar::new(),
        }
    }

    /// Release the guard's lock, park until notified (or spuriously
    /// woken), then re-acquire. Poison-recovering.
    pub fn wait<'a, T>(&self, guard: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
        let MutexGuard { g, lock, coop } = guard;
        match coop {
            Some(release) => {
                // Same-quantum release + park: no decision point between
                // dropping the lock and registering as a waiter, which
                // preserves the condvar's atomic release-and-wait.
                drop(g);
                let exec = Arc::clone(&release.exec);
                let me = release.me;
                drop(release);
                exec.cv_wait(me, primitive_id(&self.id));
                lock.lock()
            }
            None => {
                let g = self.inner.wait(g).unwrap_or_else(PoisonError::into_inner);
                MutexGuard {
                    g,
                    lock,
                    coop: None,
                }
            }
        }
    }

    /// Wake one waiter (the longest-parked, inside an exploration).
    pub fn notify_one(&self) {
        match crate::current() {
            Some((exec, _)) => exec.cv_notify_one(primitive_id(&self.id)),
            None => self.inner.notify_one(),
        }
    }

    /// Wake every waiter.
    pub fn notify_all(&self) {
        match crate::current() {
            Some((exec, _)) => exec.cv_notify_all(primitive_id(&self.id)),
            None => self.inner.notify_all(),
        }
    }
}

impl Default for Condvar {
    fn default() -> Condvar {
        Condvar::new()
    }
}

impl std::fmt::Debug for Condvar {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("Condvar")
    }
}

/// A reader-writer lock with the facade contract: poison-recovering,
/// `const`-constructible, model-checked inside explorations (shared
/// reads really do overlap in the model).
pub struct RwLock<T: ?Sized> {
    id: OnceLock<u64>,
    inner: std::sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// A new unlocked lock (usable in `static` items).
    pub const fn new(value: T) -> RwLock<T> {
        RwLock {
            id: OnceLock::new(),
            inner: std::sync::RwLock::new(value),
        }
    }

    /// Consume the lock, returning the value (poison absorbed).
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire shared read access, recovering from poisoning.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        let coop = coop_acquire(&self.id, false);
        let g = self.inner.read().unwrap_or_else(PoisonError::into_inner);
        RwLockReadGuard { g, _coop: coop }
    }

    /// Acquire exclusive write access, recovering from poisoning.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        let coop = coop_acquire(&self.id, true);
        let g = self.inner.write().unwrap_or_else(PoisonError::into_inner);
        RwLockWriteGuard { g, _coop: coop }
    }

    /// Mutable access without locking (the borrow proves exclusivity).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> RwLock<T> {
        RwLock::new(T::default())
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.inner.fmt(f)
    }
}

/// RAII guard for [`RwLock::read`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    g: std::sync::RwLockReadGuard<'a, T>,
    _coop: Option<CoopRelease>,
}

impl<T: ?Sized> std::ops::Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.g
    }
}

/// RAII guard for [`RwLock::write`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    g: std::sync::RwLockWriteGuard<'a, T>,
    _coop: Option<CoopRelease>,
}

impl<T: ?Sized> std::ops::Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.g
    }
}

impl<T: ?Sized> std::ops::DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.g
    }
}
