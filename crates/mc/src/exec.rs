//! The cooperative execution runtime: one active token, handed from
//! model thread to model thread at decision points, with the choice at
//! every point either replayed from the driving trace or defaulted —
//! and recorded, so the explorer can backtrack.
//!
//! Invariant: between two decision points exactly one model thread
//! executes. All cross-thread effects in facade-ported code go through
//! the primitives in [`crate::sync`]/[`crate::thread`], each of which
//! is a decision point, so interleaving the quanta between points is
//! exhaustive at the operation level.

use crate::{format_schedule, Config};
use std::collections::{BTreeSet, HashMap};
use std::sync::{Arc, Condvar as StdCondvar, Mutex as StdMutex, MutexGuard as StdMutexGuard};

/// Model-thread index (registration order; the body is thread 0).
pub(crate) type TId = usize;

/// Recover a poisoned std lock: a panicking model thread must not wedge
/// the runtime — the panic itself is recorded as the execution failure.
fn relock<T>(m: &StdMutex<T>) -> StdMutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Sentinel panic payload used to unwind model threads once an
/// execution has failed; recognized (and swallowed) by the thread
/// wrappers so it never masks the recorded failure.
pub(crate) struct McAbort;

/// How an execution failed.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum FailureKind {
    /// No runnable thread, none parked on a condvar: a lock cycle.
    Deadlock,
    /// No runnable thread and at least one condvar waiter: a wakeup
    /// that can never arrive (e.g. `if` instead of `while` around a
    /// wait, or notify before wait).
    LostWakeup,
    /// A model thread panicked (an assertion in the checked property).
    Panic,
    /// The execution exceeded [`Config::max_steps`] decision points —
    /// a livelock suspect.
    StepLimit,
}

impl std::fmt::Display for FailureKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            FailureKind::Deadlock => "deadlock",
            FailureKind::LostWakeup => "lost wakeup",
            FailureKind::Panic => "panic",
            FailureKind::StepLimit => "step limit",
        })
    }
}

/// One schedule failure, replayable via [`crate::Explorer::replay`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Failure {
    /// Classification.
    pub kind: FailureKind,
    /// Deterministic description (thread states use per-execution
    /// ordinals, so a replay reproduces this string byte-for-byte).
    pub message: String,
    /// The choice trace that led here, serialized with
    /// [`format_schedule`].
    pub schedule: String,
}

impl std::fmt::Display for Failure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}: {} [schedule {}]",
            self.kind, self.message, self.schedule
        )
    }
}

/// Scheduling state of one model thread.
#[derive(Clone, Debug, PartialEq, Eq)]
enum TState {
    /// May be chosen at a decision point.
    Runnable,
    /// Blocked acquiring a lock.
    Lock {
        /// Lock id being acquired.
        lock: u64,
        /// Write (or mutex) acquisition vs shared read.
        write: bool,
    },
    /// Parked on a condvar.
    Cv {
        /// Condvar id.
        cv: u64,
        /// Arrival order, for FIFO `notify_one`.
        seq: u64,
    },
    /// Waiting for scoped children to finish.
    Join(Vec<TId>),
    /// Done.
    Finished,
}

/// Who holds a lock: one writer xor any number of readers.
#[derive(Debug, Default)]
struct LockState {
    writer: Option<TId>,
    readers: BTreeSet<TId>,
}

/// Mutable runtime state, behind the runtime's own (std) mutex.
struct Inner {
    threads: Vec<TState>,
    locks: HashMap<u64, LockState>,
    /// Per-execution ordinal of each primitive id, in first-touch
    /// order, so failure messages are replay-stable.
    ordinals: HashMap<u64, usize>,
    active: TId,
    trace: Vec<u32>,
    alts: Vec<u32>,
    cursor: usize,
    preemptions: usize,
    steps: usize,
    spurious_used: usize,
    next_cv_seq: u64,
    failure: Option<Failure>,
}

impl Inner {
    fn ordinal(&mut self, id: u64) -> usize {
        let next = self.ordinals.len();
        *self.ordinals.entry(id).or_insert(next)
    }

    fn describe_threads(&mut self) -> String {
        let mut parts = Vec::new();
        for (t, st) in self.threads.clone().iter().enumerate() {
            let what = match st {
                TState::Runnable => continue,
                TState::Lock { lock, write } => format!(
                    "blocked acquiring lock #{}{}",
                    self.ordinal(*lock),
                    if *write { "" } else { " (read)" }
                ),
                TState::Cv { cv, .. } => {
                    format!("parked on condvar #{}", self.ordinal(*cv))
                }
                TState::Join(kids) => format!("joining {} scoped thread(s)", kids.len()),
                TState::Finished => continue,
            };
            parts.push(format!("t{t} {what}"));
        }
        parts.join("; ")
    }
}

/// Everything one execution produced.
pub(crate) struct RunResult {
    pub(crate) trace: Vec<u32>,
    pub(crate) alts: Vec<u32>,
    pub(crate) failure: Option<Failure>,
}

/// One execution of the model: the cooperative scheduler plus the
/// choice trace driving it.
pub(crate) struct Execution {
    inner: StdMutex<Inner>,
    turn: StdCondvar,
    cfg: Config,
}

impl Execution {
    /// Run `body` once under the given choice trace; choices beyond the
    /// trace default to the first candidate.
    pub(crate) fn run_once<F>(cfg: &Config, trace: Vec<u32>, body: &F) -> RunResult
    where
        F: Fn() + Sync,
    {
        let exec = Arc::new(Execution {
            inner: StdMutex::new(Inner {
                threads: vec![TState::Runnable],
                locks: HashMap::new(),
                ordinals: HashMap::new(),
                active: 0,
                trace,
                alts: Vec::new(),
                cursor: 0,
                preemptions: 0,
                steps: 0,
                spurious_used: 0,
                next_cv_seq: 0,
                failure: None,
            }),
            turn: StdCondvar::new(),
            cfg: cfg.clone(),
        });
        std::thread::scope(|s| {
            let e = Arc::clone(&exec);
            let handle = s.spawn(move || {
                crate::thread::run_model_thread(e, 0, body);
            });
            // The wrapper swallows all panics (recording them as the
            // execution failure), so join errors cannot carry a payload
            // we care about.
            let _ = handle.join();
        });
        let mut inner = relock(&exec.inner);
        // Replay traces may be longer than the execution consumed
        // (e.g. a failure cut it short); report only what was used.
        let consumed = inner.cursor;
        inner.trace.truncate(consumed);
        RunResult {
            trace: inner.trace.clone(),
            alts: inner.alts.clone(),
            failure: inner.failure.clone(),
        }
    }

    /// Record the first failure and wake every parked thread so the
    /// execution unwinds.
    fn fail(&self, inner: &mut Inner, kind: FailureKind, message: String) {
        if inner.failure.is_none() {
            let schedule = format_schedule(&inner.trace[..inner.cursor]);
            inner.failure = Some(Failure {
                kind,
                message,
                schedule,
            });
        }
        self.turn.notify_all();
    }

    /// Record a model-thread panic (assertion failure in the property
    /// under check) as the execution failure.
    pub(crate) fn record_panic(&self, me: TId, payload: &(dyn std::any::Any + Send)) {
        let msg = payload
            .downcast_ref::<&str>()
            .map(|s| (*s).to_string())
            .or_else(|| payload.downcast_ref::<String>().cloned())
            .unwrap_or_else(|| "non-string panic payload".to_string());
        let mut inner = relock(&self.inner);
        self.fail(&mut inner, FailureKind::Panic, format!("t{me}: {msg}"));
    }

    /// Register a new model thread (spawned runnable; it blocks in its
    /// wrapper until first scheduled).
    pub(crate) fn register_thread(&self) -> TId {
        let mut inner = relock(&self.inner);
        inner.threads.push(TState::Runnable);
        inner.threads.len() - 1
    }

    /// Decision point: choose the next thread to hold the token, then
    /// block until `me` is scheduled again. Panics with the abort
    /// sentinel once the execution has failed.
    fn pause(&self, me: TId) {
        let mut inner = relock(&self.inner);
        self.switch(&mut inner, me);
        self.wait_for_turn(inner, me);
    }

    /// Block until `me` holds the token and is runnable (consumes the
    /// guard; unwinds on failure).
    fn wait_for_turn(&self, mut inner: StdMutexGuard<'_, Inner>, me: TId) {
        loop {
            if inner.failure.is_some() {
                drop(inner);
                std::panic::panic_any(McAbort);
            }
            if inner.active == me && inner.threads[me] == TState::Runnable {
                return;
            }
            inner = self
                .turn
                .wait(inner)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
        }
    }

    /// The scheduling core: compute the candidate set, consume (or
    /// extend) the trace, hand the token over.
    fn switch(&self, inner: &mut Inner, me: TId) {
        if inner.failure.is_some() {
            return;
        }
        inner.steps += 1;
        if inner.steps > self.cfg.max_steps {
            let msg = format!(
                "execution exceeded {} decision points (livelock suspect)",
                self.cfg.max_steps
            );
            self.fail(inner, FailureKind::StepLimit, msg);
            return;
        }
        let me_runnable = inner.threads[me] == TState::Runnable;
        // Candidate order: the current thread first (continuing costs no
        // preemption), then other runnable threads by id, then — with
        // spurious wakeups on — condvar waiters woken without a notify.
        let mut candidates: Vec<TId> = Vec::new();
        if me_runnable {
            candidates.push(me);
        }
        for (t, st) in inner.threads.iter().enumerate() {
            if t != me && *st == TState::Runnable {
                candidates.push(t);
            }
        }
        if inner.spurious_used < self.cfg.spurious_wakeups {
            for (t, st) in inner.threads.iter().enumerate() {
                if matches!(st, TState::Cv { .. }) {
                    candidates.push(t);
                }
            }
        }
        if let Some(bound) = self.cfg.preemption_bound {
            if me_runnable && inner.preemptions >= bound {
                candidates.truncate(1);
            }
        }
        if candidates.is_empty() {
            if inner.threads.iter().all(|t| *t == TState::Finished) {
                // Clean completion: nothing left to schedule.
                self.turn.notify_all();
                return;
            }
            let lost = inner.threads.iter().any(|t| matches!(t, TState::Cv { .. }));
            let kind = if lost {
                FailureKind::LostWakeup
            } else {
                FailureKind::Deadlock
            };
            let msg = inner.describe_threads();
            self.fail(inner, kind, msg);
            return;
        }
        let nalts = u32::try_from(candidates.len()).unwrap_or(u32::MAX);
        let chosen_idx = if inner.cursor < inner.trace.len() {
            inner.trace[inner.cursor].min(nalts - 1) as usize
        } else {
            inner.trace.push(0);
            0
        };
        if inner.cursor == inner.alts.len() {
            inner.alts.push(nalts);
        }
        inner.cursor += 1;
        let chosen = candidates[chosen_idx];
        if me_runnable && chosen != me {
            inner.preemptions += 1;
        }
        if matches!(inner.threads[chosen], TState::Cv { .. }) {
            // A spurious wakeup: the waiter resumes with no notify,
            // consuming one unit of the per-execution budget.
            inner.threads[chosen] = TState::Runnable;
            inner.spurious_used += 1;
        }
        inner.active = chosen;
        self.turn.notify_all();
    }

    /// First scheduling of a freshly spawned thread: wait for the token
    /// without emitting a decision point. Returns `false` when the
    /// execution already failed (the body must not run).
    pub(crate) fn await_first_turn(&self, me: TId) -> bool {
        let mut inner = relock(&self.inner);
        loop {
            if inner.failure.is_some() {
                return false;
            }
            if inner.active == me && inner.threads[me] == TState::Runnable {
                return true;
            }
            inner = self
                .turn
                .wait(inner)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
        }
    }

    /// Acquire `lock` (write = mutex or rwlock-write, read otherwise).
    /// The decision point sits before the attempt, so competitors can
    /// interleave; the attempt itself is atomic.
    pub(crate) fn acquire(&self, me: TId, lock: u64, write: bool) {
        self.pause(me);
        loop {
            let mut inner = relock(&self.inner);
            inner.ordinal(lock);
            let st = inner.locks.entry(lock).or_default();
            let free = if write {
                st.writer.is_none() && st.readers.is_empty()
            } else {
                st.writer.is_none()
            };
            if free {
                let st = inner.locks.entry(lock).or_default();
                if write {
                    st.writer = Some(me);
                } else {
                    st.readers.insert(me);
                }
                return;
            }
            inner.threads[me] = TState::Lock { lock, write };
            self.switch(&mut inner, me);
            self.wait_for_turn(inner, me);
        }
    }

    /// Release `lock`. Pure bookkeeping — the next decision point
    /// (every competitor has one before its own acquire) covers the
    /// interleavings, and keeping this drop-safe means guard `Drop`
    /// impls can never unwind.
    pub(crate) fn release(&self, me: TId, lock: u64, write: bool) {
        let mut inner = relock(&self.inner);
        if let Some(st) = inner.locks.get_mut(&lock) {
            if write {
                if st.writer == Some(me) {
                    st.writer = None;
                }
            } else {
                st.readers.remove(&me);
            }
        }
        self.wake_lock_waiters(&mut inner, lock);
    }

    fn wake_lock_waiters(&self, inner: &mut Inner, lock: u64) {
        for st in &mut inner.threads {
            if matches!(st, TState::Lock { lock: l, .. } if *l == lock) {
                *st = TState::Runnable;
            }
        }
        self.turn.notify_all();
    }

    /// Park on `cv`. The caller must already have released the
    /// associated mutex *within the current quantum* (no decision point
    /// in between), which preserves the atomic release-and-wait
    /// semantics of a real condvar. Returns when notified — or woken
    /// spuriously, when the config allows it.
    pub(crate) fn cv_wait(&self, me: TId, cv: u64) {
        let mut inner = relock(&self.inner);
        inner.ordinal(cv);
        let seq = inner.next_cv_seq;
        inner.next_cv_seq += 1;
        inner.threads[me] = TState::Cv { cv, seq };
        self.switch(&mut inner, me);
        self.wait_for_turn(inner, me);
    }

    /// Wake every waiter parked on `cv` (bookkeeping only — woken
    /// threads run when next chosen at a decision point).
    pub(crate) fn cv_notify_all(&self, cv: u64) {
        let mut inner = relock(&self.inner);
        inner.ordinal(cv);
        for st in &mut inner.threads {
            if matches!(st, TState::Cv { cv: c, .. } if *c == cv) {
                *st = TState::Runnable;
            }
        }
        self.turn.notify_all();
    }

    /// Wake the longest-parked waiter on `cv` (FIFO by arrival).
    pub(crate) fn cv_notify_one(&self, cv: u64) {
        let mut inner = relock(&self.inner);
        inner.ordinal(cv);
        let mut oldest: Option<(u64, usize)> = None;
        for (t, st) in inner.threads.iter().enumerate() {
            if let TState::Cv { cv: c, seq } = st {
                if *c == cv && oldest.is_none_or(|(s, _)| *seq < s) {
                    oldest = Some((*seq, t));
                }
            }
        }
        if let Some((_, t)) = oldest {
            inner.threads[t] = TState::Runnable;
        }
        self.turn.notify_all();
    }

    /// Block until every child in `kids` has finished (scope join).
    pub(crate) fn join_children(&self, me: TId, kids: &[TId]) {
        loop {
            let mut inner = relock(&self.inner);
            if kids.iter().all(|&k| inner.threads[k] == TState::Finished) {
                return;
            }
            inner.threads[me] = TState::Join(kids.to_vec());
            self.switch(&mut inner, me);
            self.wait_for_turn(inner, me);
        }
    }

    /// Mark `me` finished, wake satisfied joiners, hand the token on.
    pub(crate) fn thread_exit(&self, me: TId) {
        let mut inner = relock(&self.inner);
        inner.threads[me] = TState::Finished;
        let joiners: Vec<TId> = inner
            .threads
            .iter()
            .enumerate()
            .filter_map(|(t, st)| match st {
                TState::Join(kids)
                    if kids.iter().all(|&k| inner.threads[k] == TState::Finished) =>
                {
                    Some(t)
                }
                _ => None,
            })
            .collect();
        for t in joiners {
            inner.threads[t] = TState::Runnable;
        }
        if inner.failure.is_some() {
            self.turn.notify_all();
            return;
        }
        self.switch(&mut inner, me);
        // `me` is finished: hand the token over and return without
        // waiting for another turn.
    }
}
