//! Model-aware scoped threads.
//!
//! [`scope`] mirrors `std::thread::scope`. Inside an exploration each
//! spawned closure runs as a *model thread*: a real OS thread that
//! registers with the [`crate::Explorer`]'s execution, waits for the
//! active token before running, and reports its exit so joins become
//! decision points. Outside an exploration the wrapper is a thin
//! delegation to `std`.

use crate::exec::{Execution, McAbort, TId};
use std::cell::RefCell;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Mutex as StdMutex, PoisonError};

thread_local! {
    /// The calling OS thread's model identity, when it is a model
    /// thread of an active exploration.
    static CURRENT: RefCell<Option<(Arc<Execution>, TId)>> = const { RefCell::new(None) };
}

/// The current thread's execution context (`None` outside a model).
pub(crate) fn current_ctx() -> Option<(Arc<Execution>, TId)> {
    CURRENT.with(|c| c.borrow().clone())
}

/// Drive `body` as model thread `me` of `exec`: install the context,
/// wait for the first turn, run, record panics (swallowing the abort
/// sentinel), and report the exit. Used for the root thread (t0).
pub(crate) fn run_model_thread<F>(exec: Arc<Execution>, me: TId, body: &F)
where
    F: Fn() + Sync,
{
    CURRENT.with(|c| *c.borrow_mut() = Some((Arc::clone(&exec), me)));
    if exec.await_first_turn(me) {
        if let Err(payload) = catch_unwind(AssertUnwindSafe(body)) {
            if !payload.is::<McAbort>() {
                exec.record_panic(me, payload.as_ref());
            }
        }
    }
    exec.thread_exit(me);
    CURRENT.with(|c| *c.borrow_mut() = None);
}

/// Child-thread wrapper: like [`run_model_thread`] but carries the
/// closure's result out (`None` when the execution aborted under it).
fn run_child_thread<F, T>(exec: Arc<Execution>, me: TId, f: F) -> Option<T>
where
    F: FnOnce() -> T,
{
    CURRENT.with(|c| *c.borrow_mut() = Some((Arc::clone(&exec), me)));
    let out = if exec.await_first_turn(me) {
        match catch_unwind(AssertUnwindSafe(f)) {
            Ok(v) => Some(v),
            Err(payload) => {
                if !payload.is::<McAbort>() {
                    exec.record_panic(me, payload.as_ref());
                }
                None
            }
        }
    } else {
        None
    };
    exec.thread_exit(me);
    CURRENT.with(|c| *c.borrow_mut() = None);
    out
}

/// A scope handle mirroring `std::thread::Scope`, with model-thread
/// registration inside explorations.
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope std::thread::Scope<'scope, 'env>,
    ctx: Option<(Arc<Execution>, TId)>,
    kids: StdMutex<Vec<TId>>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawn a scoped thread. Inside an exploration the child becomes
    /// a schedulable model thread; it runs only when the explorer
    /// hands it the token.
    pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
    where
        F: FnOnce() -> T + Send + 'scope,
        T: Send + 'scope,
    {
        // Copy the reference out: its lifetime is the full `'scope`,
        // regardless of how short the `&self` borrow is.
        let scope = self.inner;
        match &self.ctx {
            Some((exec, _)) => {
                let exec = Arc::clone(exec);
                let kid = exec.register_thread();
                self.kids
                    .lock()
                    .unwrap_or_else(PoisonError::into_inner)
                    .push(kid);
                let exec2 = Arc::clone(&exec);
                let inner = scope.spawn(move || run_child_thread(exec2, kid, f));
                ScopedJoinHandle {
                    inner,
                    ctx: Some((exec, kid)),
                }
            }
            None => ScopedJoinHandle {
                inner: scope.spawn(move || Some(f())),
                ctx: None,
            },
        }
    }
}

/// Join handle for [`Scope::spawn`], mirroring
/// `std::thread::ScopedJoinHandle`.
pub struct ScopedJoinHandle<'scope, T> {
    inner: std::thread::ScopedJoinHandle<'scope, Option<T>>,
    ctx: Option<(Arc<Execution>, TId)>,
}

impl<T> ScopedJoinHandle<'_, T> {
    /// Wait for the child to finish and take its result. Inside an
    /// exploration the wait is a decision point (and unwinds if the
    /// execution has failed).
    ///
    /// # Errors
    /// The child's panic payload, as with `std` (model-thread panics
    /// are reported through the explorer instead).
    pub fn join(self) -> std::thread::Result<T> {
        if let Some((exec, kid)) = &self.ctx {
            if let Some((_, me)) = current_ctx() {
                exec.join_children(me, std::slice::from_ref(kid));
            }
        }
        match self.inner.join() {
            Ok(Some(v)) => Ok(v),
            // The child aborted mid-execution: a failure is recorded,
            // so unwind this thread too.
            Ok(None) => std::panic::panic_any(McAbort),
            Err(e) => Err(e),
        }
    }

    /// Whether the child has finished running.
    pub fn is_finished(&self) -> bool {
        self.inner.is_finished()
    }
}

/// Mirror of `std::thread::scope`: run `f` with a scope handle whose
/// spawned threads may borrow from the enclosing frame; all children
/// are joined (cooperatively first, inside an exploration) before this
/// returns.
pub fn scope<'env, F, R>(f: F) -> R
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    std::thread::scope(|s| {
        let sc = Scope {
            inner: s,
            ctx: current_ctx(),
            kids: StdMutex::new(Vec::new()),
        };
        let r = f(&sc);
        if let Some((exec, me)) = &sc.ctx {
            // Cooperative join before the std scope's blocking join:
            // the token keeps circulating until every child has run to
            // completion, so the std join below cannot stall the model.
            let kids = sc
                .kids
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .clone();
            exec.join_children(*me, &kids);
        }
        r
    })
}
