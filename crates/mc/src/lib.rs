//! # idg-mc — exhaustive schedule exploration for the sync facade
//!
//! The stream scheduler and the fleet executor are hand-rolled
//! condvar/mutex machines whose exactly-once and no-deadlock guarantees
//! were previously pinned only by wall-clock soak tests — which observe
//! the handful of interleavings the OS scheduler happens to produce.
//! This crate is the dynamic half of the concurrency-discipline story
//! (DESIGN.md §13): a loom-style deterministic cooperative scheduler
//! that runs a closed concurrent model under **every** interleaving up
//! to a bound, with deadlock and lost-wakeup detection and byte-exact
//! failing-schedule replay.
//!
//! ## How it works
//!
//! Model threads are real OS threads, but exactly one ever runs at a
//! time: a single *active token* is handed from thread to thread at
//! **decision points** (lock acquisition, condvar block, thread spawn /
//! join / exit). At each decision point the runnable threads form the
//! choice set; the [`Explorer`] drives a depth-first search over choice
//! indices, replaying the recorded prefix and diverging at the deepest
//! unexplored branch. Because all shared state in safe Rust sits behind
//! the facade's locks, interleaving at these points is exhaustive at
//! the operation level.
//!
//! - **Deadlock**: a decision point with no runnable candidate while
//!   unfinished threads remain. If any of them is parked on a condvar
//!   the failure is classified as a *lost wakeup* — the signature of a
//!   missing `while` around a wait.
//! - **Spurious wakeups** ([`Config::spurious_wakeups`]): condvar
//!   waiters are offered as wake-without-notify choices, which catches
//!   `if`-guarded waits even on schedules where no notify is pending.
//! - **Replay**: a failure carries its schedule serialized as a choice
//!   string (see [`format_schedule`]); [`Explorer::replay`] re-runs it
//!   and reproduces the same failure byte-for-byte.
//!
//! The primitives in [`sync`] and [`thread`] fall back to plain
//! `std::sync` behavior when no exploration is active on the calling
//! thread, so a workspace compiled with `--cfg idg_model_check` still
//! runs its ordinary tests unchanged.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

mod exec;
pub mod sync;
pub mod thread;

pub use exec::{Failure, FailureKind};

use exec::Execution;
use idg_types::IdgError;
use std::sync::Arc;

/// Exploration bounds. The defaults explore small models (3–4 threads,
/// a few dozen decision points) exhaustively at preemption bound 2 in
/// well under a minute.
#[derive(Clone, Debug)]
pub struct Config {
    /// Maximum schedules (executions) to run before giving up with
    /// `complete = false`.
    pub max_schedules: u64,
    /// Maximum decision points per execution — a livelock backstop; an
    /// execution that exceeds it fails with [`FailureKind::StepLimit`].
    pub max_steps: usize,
    /// CHESS-style preemption bound: how many times a schedule may
    /// switch away from a thread that is still runnable. `None`
    /// explores the full interleaving tree.
    pub preemption_bound: Option<usize>,
    /// Maximum spurious condvar wakeups injected per execution (`0`
    /// disables injection). Each parked waiter may be offered as a
    /// wake-without-notify choice until the budget is spent; the
    /// budget keeps the schedule tree finite — an unbounded injector
    /// would chase a correct `while`-guarded wait through infinitely
    /// many park/re-park rounds.
    pub spurious_wakeups: usize,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            max_schedules: 50_000,
            max_steps: 20_000,
            preemption_bound: Some(2),
            spurious_wakeups: 0,
        }
    }
}

impl Config {
    /// Reject degenerate bounds (a zero budget could never run the
    /// first execution to completion).
    pub fn validate(&self) -> Result<(), IdgError> {
        if self.max_schedules == 0 {
            return Err(IdgError::InvalidParameter(
                "model checker: max_schedules must be positive".into(),
            ));
        }
        if self.max_steps == 0 {
            return Err(IdgError::InvalidParameter(
                "model checker: max_steps must be positive".into(),
            ));
        }
        Ok(())
    }
}

/// Outcome of one [`Explorer::explore`] call.
#[derive(Clone, Debug)]
pub struct Report {
    /// Number of schedules (full executions) that were run.
    pub schedules: u64,
    /// Whether the whole bounded interleaving tree was exhausted.
    /// `false` when the search stopped early — at the first failure or
    /// at [`Config::max_schedules`].
    pub complete: bool,
    /// The first failure found, if any, with its replayable schedule.
    pub failure: Option<Failure>,
}

impl Report {
    /// Convenience: the report proves the property (tree exhausted,
    /// nothing failed).
    pub fn proved(&self) -> bool {
        self.complete && self.failure.is_none()
    }
}

/// Depth-first schedule explorer over a deterministic concurrent body.
#[derive(Clone, Debug)]
pub struct Explorer {
    cfg: Config,
}

impl Explorer {
    /// An explorer with the given bounds.
    ///
    /// # Errors
    /// [`IdgError::InvalidParameter`] on degenerate bounds.
    pub fn new(cfg: Config) -> Result<Explorer, IdgError> {
        cfg.validate()?;
        Ok(Explorer { cfg })
    }

    /// Run `body` under every interleaving up to the configured bounds,
    /// stopping at the first failure (assertion panic, deadlock, lost
    /// wakeup, or step-limit overrun).
    ///
    /// `body` must be deterministic apart from scheduling: the search
    /// replays choice prefixes and assumes identical behavior.
    pub fn explore<F>(&self, body: F) -> Report
    where
        F: Fn() + Sync,
    {
        let mut trace: Vec<u32> = Vec::new();
        let mut schedules = 0u64;
        loop {
            let run = Execution::run_once(&self.cfg, trace, &body);
            schedules += 1;
            if run.failure.is_some() {
                return Report {
                    schedules,
                    complete: false,
                    failure: run.failure,
                };
            }
            // Backtrack: deepest decision point with an untried branch.
            let mut divergence = None;
            for i in (0..run.trace.len()).rev() {
                if run.trace[i] + 1 < run.alts[i] {
                    divergence = Some(i);
                    break;
                }
            }
            let Some(i) = divergence else {
                return Report {
                    schedules,
                    complete: true,
                    failure: None,
                };
            };
            if schedules >= self.cfg.max_schedules {
                return Report {
                    schedules,
                    complete: false,
                    failure: None,
                };
            }
            trace = run.trace[..i].to_vec();
            trace.push(run.trace[i] + 1);
        }
    }

    /// Re-run a single execution pinned to a serialized schedule (as
    /// carried by [`Failure::schedule`]). Positions beyond the recorded
    /// trace fall back to the first candidate, so a failing prefix
    /// reproduces its failure exactly.
    ///
    /// # Errors
    /// [`IdgError::InvalidParameter`] when the schedule string does not
    /// parse.
    pub fn replay<F>(&self, schedule: &str, body: F) -> Result<Report, IdgError>
    where
        F: Fn() + Sync,
    {
        let trace = parse_schedule(schedule)?;
        let run = Execution::run_once(&self.cfg, trace, &body);
        Ok(Report {
            schedules: 1,
            complete: false,
            failure: run.failure,
        })
    }

    /// The bounds this explorer runs under.
    pub fn config(&self) -> &Config {
        &self.cfg
    }
}

/// Serialize a choice trace as the dot-separated schedule string used
/// in failure reports (empty trace → empty string).
pub fn format_schedule(trace: &[u32]) -> String {
    trace
        .iter()
        .map(u32::to_string)
        .collect::<Vec<_>>()
        .join(".")
}

/// Parse a schedule string produced by [`format_schedule`].
///
/// # Errors
/// [`IdgError::InvalidParameter`] on any non-numeric component.
pub fn parse_schedule(s: &str) -> Result<Vec<u32>, IdgError> {
    if s.is_empty() {
        return Ok(Vec::new());
    }
    s.split('.')
        .map(|part| {
            part.parse::<u32>().map_err(|_| {
                IdgError::InvalidParameter(format!("bad schedule component `{part}` in `{s}`"))
            })
        })
        .collect()
}

/// The execution context of the current OS thread, if it is a model
/// thread inside an active exploration.
pub(crate) fn current() -> Option<(Arc<Execution>, usize)> {
    thread::current_ctx()
}
