//! Model-checker self-tests: the explorer proves correct protocols,
//! catches seeded concurrency bugs with the right failure
//! classification, and replays failing schedules byte-identically.

use idg_mc::{sync::Condvar, sync::Mutex, thread, Config, Explorer, FailureKind};

fn explorer(cfg: Config) -> Explorer {
    Explorer::new(cfg).expect("valid config")
}

#[test]
fn config_rejects_zero_bounds() {
    assert!(Explorer::new(Config {
        max_schedules: 0,
        ..Config::default()
    })
    .is_err());
    assert!(Explorer::new(Config {
        max_steps: 0,
        ..Config::default()
    })
    .is_err());
}

#[test]
fn sequential_body_is_one_schedule() {
    let report = explorer(Config::default()).explore(|| {
        let m = Mutex::new(7u32);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 8);
    });
    assert!(report.proved(), "report: {report:?}");
    assert_eq!(report.schedules, 1);
}

#[test]
fn counter_increments_exactly_once_per_thread() {
    let report = explorer(Config::default()).explore(|| {
        let n = Mutex::new(0u32);
        thread::scope(|s| {
            s.spawn(|| *n.lock() += 1);
            s.spawn(|| *n.lock() += 1);
        });
        assert_eq!(*n.lock(), 2);
    });
    assert!(report.proved(), "report: {report:?}");
    assert!(
        report.schedules > 1,
        "two racing threads must yield multiple interleavings, got {}",
        report.schedules
    );
}

#[test]
fn ab_ba_lock_order_is_caught_as_deadlock() {
    let report = explorer(Config::default()).explore(|| {
        let a = Mutex::new(());
        let b = Mutex::new(());
        thread::scope(|s| {
            s.spawn(|| {
                let _ga = a.lock();
                let _gb = b.lock();
            });
            s.spawn(|| {
                let _gb = b.lock();
                let _ga = a.lock();
            });
        });
    });
    let failure = report.failure.expect("AB-BA ordering must deadlock");
    assert_eq!(failure.kind, FailureKind::Deadlock);
    assert!(
        failure.message.contains("blocked acquiring lock"),
        "message should describe the blocked threads: {}",
        failure.message
    );
}

#[test]
fn notify_before_wait_is_caught_as_lost_wakeup() {
    // A bare wait with no predicate: on schedules where the notifier
    // runs first, the signal hits no waiter and the waiter parks
    // forever.
    let report = explorer(Config::default()).explore(|| {
        let m = Mutex::new(());
        let cv = Condvar::new();
        thread::scope(|s| {
            s.spawn(|| {
                let g = m.lock();
                let _g = cv.wait(g);
            });
            s.spawn(|| {
                let _g = m.lock();
                cv.notify_all();
            });
        });
    });
    let failure = report.failure.expect("bare wait must lose a wakeup");
    assert_eq!(failure.kind, FailureKind::LostWakeup);
    assert!(
        failure.message.contains("parked on condvar"),
        "message should name the parked thread: {}",
        failure.message
    );
}

#[test]
fn if_guarded_wait_is_caught_by_spurious_wakeups() {
    // The `if`-instead-of-`while` bug: a spurious wakeup resumes the
    // waiter without the predicate holding and the assertion fires.
    // L6 bans this shape statically; this is the dynamic proof that
    // the ban is load-bearing.
    let cfg = Config {
        spurious_wakeups: 1,
        ..Config::default()
    };
    let report = explorer(cfg).explore(|| {
        let m = Mutex::new(false);
        let cv = Condvar::new();
        thread::scope(|s| {
            s.spawn(|| {
                let mut g = m.lock();
                if !*g {
                    g = cv.wait(g);
                }
                assert!(*g, "woke with the predicate still false");
            });
            s.spawn(|| {
                let mut g = m.lock();
                *g = true;
                cv.notify_all();
            });
        });
    });
    let failure = report.failure.expect("if-guarded wait must be caught");
    assert_eq!(failure.kind, FailureKind::Panic);
    assert!(
        failure.message.contains("predicate still false"),
        "the waiter's assertion should be the reported failure: {}",
        failure.message
    );
}

#[test]
fn while_guarded_wait_survives_spurious_wakeups() {
    let cfg = Config {
        spurious_wakeups: 1,
        ..Config::default()
    };
    let report = explorer(cfg).explore(|| {
        let m = Mutex::new(false);
        let cv = Condvar::new();
        thread::scope(|s| {
            s.spawn(|| {
                let mut g = m.lock();
                while !*g {
                    g = cv.wait(g);
                }
                assert!(*g);
            });
            s.spawn(|| {
                let mut g = m.lock();
                *g = true;
                cv.notify_all();
            });
        });
    });
    assert!(report.proved(), "report: {report:?}");
}

#[test]
fn failing_schedule_replays_byte_identically() {
    let body = || {
        let a = Mutex::new(());
        let b = Mutex::new(());
        thread::scope(|s| {
            s.spawn(|| {
                let _ga = a.lock();
                let _gb = b.lock();
            });
            s.spawn(|| {
                let _gb = b.lock();
                let _ga = a.lock();
            });
        });
    };
    let ex = explorer(Config::default());
    let first = ex.explore(body).failure.expect("must deadlock");
    let replayed = ex
        .replay(&first.schedule, body)
        .expect("recorded schedule must parse")
        .failure
        .expect("replay must reproduce the failure");
    assert_eq!(first, replayed, "replay must be byte-identical");
}

#[test]
fn schedule_strings_round_trip() {
    for trace in [vec![], vec![0], vec![3, 0, 1, 2]] {
        let s = idg_mc::format_schedule(&trace);
        assert_eq!(idg_mc::parse_schedule(&s).expect("round trip"), trace);
    }
    assert!(idg_mc::parse_schedule("1.x.2").is_err());
}

#[test]
fn max_schedules_bounds_the_search() {
    let cfg = Config {
        max_schedules: 3,
        ..Config::default()
    };
    let report = explorer(cfg).explore(|| {
        let n = Mutex::new(0u32);
        thread::scope(|s| {
            s.spawn(|| *n.lock() += 1);
            s.spawn(|| *n.lock() += 1);
            s.spawn(|| *n.lock() += 1);
        });
    });
    assert!(!report.complete, "3 schedules cannot exhaust 3 threads");
    assert_eq!(report.schedules, 3);
    assert!(report.failure.is_none());
}

#[test]
fn runaway_execution_hits_the_step_limit() {
    let cfg = Config {
        max_steps: 64,
        ..Config::default()
    };
    let report = explorer(cfg).explore(|| {
        let m = Mutex::new(0u64);
        loop {
            let mut g = m.lock();
            *g += 1;
            if *g == u64::MAX {
                break; // unreachable; keeps the loop non-trivial
            }
        }
    });
    let failure = report.failure.expect("unbounded loop must trip the limit");
    assert_eq!(failure.kind, FailureKind::StepLimit);
}

#[test]
fn exploration_is_deterministic() {
    let body = || {
        let n = Mutex::new(0u32);
        thread::scope(|s| {
            s.spawn(|| *n.lock() += 1);
            s.spawn(|| *n.lock() += 1);
        });
        assert_eq!(*n.lock(), 2);
    };
    let a = explorer(Config::default()).explore(body);
    let b = explorer(Config::default()).explore(body);
    assert_eq!(a.schedules, b.schedules);
    assert!(a.proved() && b.proved());
}

#[test]
fn join_handle_returns_the_child_result() {
    let report = explorer(Config::default()).explore(|| {
        let m = Mutex::new(5u32);
        let doubled = thread::scope(|s| {
            let h = s.spawn(|| *m.lock() * 2);
            h.join().expect("child does not panic")
        });
        assert_eq!(doubled, 10);
    });
    assert!(report.proved(), "report: {report:?}");
}

/// Deeper-bound variant: unbounded preemptions and a bigger model.
/// Slow by design; run with `cargo test -p idg-mc -- --ignored`.
#[test]
#[ignore = "deeper bound for local/cron runs; CI uses the bounded suite"]
fn counter_exhaustive_unbounded_preemptions() {
    let cfg = Config {
        preemption_bound: None,
        max_schedules: 2_000_000,
        ..Config::default()
    };
    let report = explorer(cfg).explore(|| {
        let n = Mutex::new(0u32);
        thread::scope(|s| {
            s.spawn(|| *n.lock() += 1);
            s.spawn(|| *n.lock() += 1);
            s.spawn(|| *n.lock() += 1);
        });
        assert_eq!(*n.lock(), 3);
    });
    assert!(report.proved(), "report: {report:?}");
}
