//! # idg-sync — the workspace concurrency facade
//!
//! Every library crate in the workspace takes its concurrency
//! primitives (`Mutex`, `Condvar`, `RwLock`, `thread::scope`) from
//! here instead of `std::sync` / `std::thread` — enforced by lint L7
//! (DESIGN.md §13). Two builds share one API:
//!
//! - **Normal builds**: zero-cost newtypes over `std::sync` whose only
//!   behavioral change is *poison recovery* — `lock()` returns the
//!   guard directly, absorbing [`std::sync::PoisonError`], which also
//!   deduplicates the ad-hoc `lock().unwrap_or_else(..)` helpers the
//!   scheduler and kernel cache used to carry (lint L6 now bans those
//!   at the call site).
//! - **`--cfg idg_model_check` builds**: straight re-exports of the
//!   [`idg-mc`](idg_mc) cooperative primitives, so the same library
//!   code becomes deterministically schedulable and every interleaving
//!   up to a bound can be explored in tests. Outside an active
//!   exploration those degrade to the plain behavior, so ordinary
//!   tests still pass under the cfg.
//!
//! The poison-recovery contract is deliberate, not cavalier: every
//! protected structure in this workspace stays consistent across a
//! panicking critical section (counters may undercount; queues may
//! hold an orphaned index), and the panic itself still propagates
//! through the owning thread scope — recovering the lock merely keeps
//! sibling workers from deadlocking behind a poisoned mutex while the
//! panic unwinds.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

#[cfg(idg_model_check)]
pub use idg_mc::sync::{Condvar, Mutex, MutexGuard, RwLock, RwLockReadGuard, RwLockWriteGuard};

/// Scoped threads routed through the model checker.
#[cfg(idg_model_check)]
pub mod thread {
    pub use idg_mc::thread::{scope, Scope, ScopedJoinHandle};
}

#[cfg(not(idg_model_check))]
mod plain;

#[cfg(not(idg_model_check))]
pub use plain::{Condvar, Mutex, MutexGuard, RwLock, RwLockReadGuard, RwLockWriteGuard};

/// Scoped threads (plain `std::thread` in normal builds).
#[cfg(not(idg_model_check))]
pub mod thread {
    pub use std::thread::{scope, Scope, ScopedJoinHandle};
}
