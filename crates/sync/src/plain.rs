//! Normal-build facade: zero-cost newtypes over `std::sync` with
//! poison recovery baked into every acquisition. API-identical to
//! [`idg_mc::sync`] so the `--cfg idg_model_check` build is a drop-in
//! swap.

use std::sync::PoisonError;

/// A mutual-exclusion lock whose acquisitions recover from poisoning.
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// A new unlocked mutex (usable in `static` items).
    pub const fn new(value: T) -> Mutex<T> {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consume the mutex, returning the value (poison absorbed).
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, recovering from poisoning: a panicking
    /// critical section elsewhere never wedges this caller (the panic
    /// still propagates through its own thread scope).
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard(self.0.lock().unwrap_or_else(PoisonError::into_inner))
    }

    /// Mutable access without locking (the borrow proves exclusivity).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Mutex<T> {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.0.fmt(f)
    }
}

/// RAII guard for [`Mutex::lock`].
pub struct MutexGuard<'a, T: ?Sized>(std::sync::MutexGuard<'a, T>);

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

/// A condition variable paired with the facade [`Mutex`].
pub struct Condvar(std::sync::Condvar);

impl Condvar {
    /// A new condvar (usable in `static` items).
    pub const fn new() -> Condvar {
        Condvar(std::sync::Condvar::new())
    }

    /// Release the guard's lock, park until notified (or spuriously
    /// woken — always re-check the predicate under a `while`; lint L6
    /// enforces this), then re-acquire. Poison-recovering.
    pub fn wait<'a, T>(&self, guard: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
        MutexGuard(self.0.wait(guard.0).unwrap_or_else(PoisonError::into_inner))
    }

    /// Wake one waiter.
    pub fn notify_one(&self) {
        self.0.notify_one();
    }

    /// Wake every waiter.
    pub fn notify_all(&self) {
        self.0.notify_all();
    }
}

impl Default for Condvar {
    fn default() -> Condvar {
        Condvar::new()
    }
}

impl std::fmt::Debug for Condvar {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("Condvar")
    }
}

/// A reader-writer lock whose acquisitions recover from poisoning.
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    /// A new unlocked lock (usable in `static` items).
    pub const fn new(value: T) -> RwLock<T> {
        RwLock(std::sync::RwLock::new(value))
    }

    /// Consume the lock, returning the value (poison absorbed).
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire shared read access, recovering from poisoning.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard(self.0.read().unwrap_or_else(PoisonError::into_inner))
    }

    /// Acquire exclusive write access, recovering from poisoning.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard(self.0.write().unwrap_or_else(PoisonError::into_inner))
    }

    /// Mutable access without locking (the borrow proves exclusivity).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> RwLock<T> {
        RwLock::new(T::default())
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.0.fmt(f)
    }
}

/// RAII guard for [`RwLock::read`].
pub struct RwLockReadGuard<'a, T: ?Sized>(std::sync::RwLockReadGuard<'a, T>);

impl<T: ?Sized> std::ops::Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

/// RAII guard for [`RwLock::write`].
pub struct RwLockWriteGuard<'a, T: ?Sized>(std::sync::RwLockWriteGuard<'a, T>);

impl<T: ?Sized> std::ops::Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> std::ops::DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}
