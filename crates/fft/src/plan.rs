//! 1-D FFT plans: Stockham autosort mixed-radix with Bluestein fallback.
//!
//! The Stockham autosort formulation is used instead of the textbook
//! bit-reversal Cooley-Tukey because it (a) handles mixed radices
//! uniformly — the subgrid size 24 = 4·3·2 of the paper's benchmark is
//! not a power of two — and (b) accesses both buffers with unit stride in
//! the inner loop, which is what lets LLVM vectorize the butterflies.
//!
//! A plan is immutable after construction (`Send + Sync`), so one plan is
//! shared by all worker threads of the batched subgrid FFTs.

use crate::bluestein::BluesteinPlan;
use idg_types::{Complex, Float};

/// Transform direction.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Direction {
    /// `X[k] = Σ x[n]·e^{−2πi nk/N}` (unscaled).
    Forward,
    /// Conjugate transform scaled by `1/N`; exact inverse of `Forward`.
    Inverse,
}

/// One Stockham stage: butterfly radix plus its twiddle table.
struct Stage<T> {
    radix: usize,
    /// `n_cur / radix` for the stage's current length.
    m: usize,
    /// Twiddles `ω_{n_cur}^{p·j}` stored as `tw[p·radix + j]`,
    /// `p ∈ [0, m)`, `j ∈ [0, radix)`.
    twiddles: Vec<Complex<T>>,
    /// DFT matrix ω_r^{jk} for the generic butterfly; empty for the
    /// hardcoded radix-2/4 stages.
    table: Vec<Complex<T>>,
}

enum Backend<T> {
    /// Sizes whose factors are all in {2, 3, 5} (with 4 = 2·2 grouped).
    Stockham(Vec<Stage<T>>),
    /// Everything else (sizes with prime factors > 5).
    Bluestein(Box<BluesteinPlan<T>>),
    /// N = 1.
    Identity,
}

/// An immutable FFT plan for one transform length.
pub struct FftPlan<T> {
    n: usize,
    backend: Backend<T>,
}

/// Factor `n` into the radix sequence used by the Stockham pipeline:
/// radix-4 first (fewest stages), then 2, 3, 5. Returns `None` when a
/// factor > 5 remains.
fn factorize(mut n: usize) -> Option<Vec<usize>> {
    let mut out = Vec::new();
    while n.is_multiple_of(4) {
        out.push(4);
        n /= 4;
    }
    for r in [2usize, 3, 5] {
        while n.is_multiple_of(r) {
            out.push(r);
            n /= r;
        }
    }
    (n == 1).then_some(out)
}

fn twiddle<T: Float>(num: i64, den: i64) -> Complex<T> {
    // ω = e^{−2πi·num/den}, computed in f64 for accuracy.
    let theta = -2.0 * std::f64::consts::PI * (num as f64) / (den as f64);
    Complex::new(T::from_f64(theta.cos()), T::from_f64(theta.sin()))
}

impl<T: Float> FftPlan<T> {
    /// Build a plan for length `n` (any `n ≥ 1`).
    pub fn new(n: usize) -> Self {
        assert!(n >= 1, "FFT length must be at least 1");
        if n == 1 {
            return Self {
                n,
                backend: Backend::Identity,
            };
        }
        match factorize(n) {
            Some(factors) => {
                let mut stages = Vec::with_capacity(factors.len());
                let mut n_cur = n;
                for &radix in &factors {
                    let m = n_cur / radix;
                    let mut tw = Vec::with_capacity(m * radix);
                    for p in 0..m {
                        for j in 0..radix {
                            tw.push(twiddle((p * j) as i64, n_cur as i64));
                        }
                    }
                    // Generic stages carry their own ω_r^{jk} DFT matrix;
                    // radix 2 and 4 use hardcoded butterflies instead.
                    let mut table = Vec::new();
                    if radix != 2 && radix != 4 {
                        table.reserve(radix * radix);
                        for j in 0..radix {
                            for k in 0..radix {
                                table.push(twiddle((j * k) as i64, radix as i64));
                            }
                        }
                    }
                    stages.push(Stage {
                        radix,
                        m,
                        twiddles: tw,
                        table,
                    });
                    n_cur = m;
                }
                Self {
                    n,
                    backend: Backend::Stockham(stages),
                }
            }
            None => Self {
                n,
                backend: Backend::Bluestein(Box::new(BluesteinPlan::new(n))),
            },
        }
    }

    /// Transform length.
    #[inline]
    pub fn len(&self) -> usize {
        self.n
    }

    /// True when `n == 1` (the identity transform).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.n == 1
    }

    /// True when this plan uses the Bluestein fallback.
    pub fn is_bluestein(&self) -> bool {
        matches!(self.backend, Backend::Bluestein(_))
    }

    /// Scratch length required by [`Self::process_with_scratch`].
    pub fn scratch_len(&self) -> usize {
        match &self.backend {
            Backend::Identity => 0,
            Backend::Stockham(_) => self.n,
            Backend::Bluestein(b) => b.scratch_len(),
        }
    }

    /// In-place transform using caller-provided scratch (hot path:
    /// lets the batched subgrid FFTs reuse one scratch per worker).
    pub fn process_with_scratch(
        &self,
        data: &mut [Complex<T>],
        scratch: &mut [Complex<T>],
        dir: Direction,
    ) {
        assert_eq!(data.len(), self.n, "data length must equal plan length");
        assert!(scratch.len() >= self.scratch_len(), "scratch too short");
        match dir {
            Direction::Forward => self.forward_inner(data, scratch),
            Direction::Inverse => {
                // inverse(x) = conj(forward(conj(x))) / n
                for v in data.iter_mut() {
                    *v = v.conj();
                }
                self.forward_inner(data, scratch);
                let scale = T::ONE / T::from_usize(self.n);
                for v in data.iter_mut() {
                    *v = v.conj().scale(scale);
                }
            }
        }
    }

    /// In-place transform, allocating scratch internally.
    pub fn process(&self, data: &mut [Complex<T>], dir: Direction) {
        let mut scratch = vec![Complex::zero(); self.scratch_len()];
        self.process_with_scratch(data, &mut scratch, dir);
    }

    /// Convenience forward transform.
    pub fn forward(&self, data: &mut [Complex<T>]) {
        self.process(data, Direction::Forward);
    }

    /// Convenience inverse transform.
    pub fn inverse(&self, data: &mut [Complex<T>]) {
        self.process(data, Direction::Inverse);
    }

    fn forward_inner(&self, data: &mut [Complex<T>], scratch: &mut [Complex<T>]) {
        match &self.backend {
            Backend::Identity => {}
            Backend::Bluestein(b) => b.forward(data, scratch),
            Backend::Stockham(stages) => {
                let mut s = 1usize; // stride (number of completed sub-transforms)
                let mut in_data = true; // current source buffer is `data`
                for stage in stages {
                    {
                        let (src, dst): (&[Complex<T>], &mut [Complex<T>]) = if in_data {
                            (&*data, &mut *scratch)
                        } else {
                            (&*scratch, &mut *data)
                        };
                        match stage.radix {
                            2 => stage_radix2(src, dst, stage, s),
                            4 => stage_radix4(src, dst, stage, s),
                            _ => stage_generic(src, dst, stage, s, &stage.table),
                        }
                    }
                    s *= stage.radix;
                    in_data = !in_data;
                }
                if !in_data {
                    data.copy_from_slice(scratch);
                }
            }
        }
    }
}

/// Radix-2 Stockham stage: `dst[q + s(2p+j)] = (a ± b)·ω^{pj}`.
fn stage_radix2<T: Float>(src: &[Complex<T>], dst: &mut [Complex<T>], st: &Stage<T>, s: usize) {
    let m = st.m;
    for p in 0..m {
        let w = st.twiddles[p * 2 + 1]; // ω^{p·1}; j=0 twiddle is 1
        let src_a = &src[s * p..s * p + s];
        let src_b = &src[s * (p + m)..s * (p + m) + s];
        let (d0, d1) = dst[s * 2 * p..s * (2 * p + 2)].split_at_mut(s);
        for q in 0..s {
            let a = src_a[q];
            let b = src_b[q];
            d0[q] = a + b;
            d1[q] = (a - b) * w;
        }
    }
}

/// Radix-4 Stockham stage with the hardcoded 4-point butterfly
/// (multiplications by ±i are free rotations).
fn stage_radix4<T: Float>(src: &[Complex<T>], dst: &mut [Complex<T>], st: &Stage<T>, s: usize) {
    let m = st.m;
    for p in 0..m {
        let w1 = st.twiddles[p * 4 + 1];
        let w2 = st.twiddles[p * 4 + 2];
        let w3 = st.twiddles[p * 4 + 3];
        for q in 0..s {
            let a = src[q + s * p];
            let b = src[q + s * (p + m)];
            let c = src[q + s * (p + 2 * m)];
            let d = src[q + s * (p + 3 * m)];
            let apc = a + c;
            let amc = a - c;
            let bpd = b + d;
            let jbmd = (b - d).mul_i(); // i·(b−d)
                                        // forward DFT-4: X1 uses −i, X3 uses +i
            dst[q + s * (4 * p)] = apc + bpd;
            dst[q + s * (4 * p + 1)] = (amc - jbmd) * w1;
            dst[q + s * (4 * p + 2)] = (apc - bpd) * w2;
            dst[q + s * (4 * p + 3)] = (amc + jbmd) * w3;
        }
    }
}

/// Table-driven stage for radices 3 and 5.
fn stage_generic<T: Float>(
    src: &[Complex<T>],
    dst: &mut [Complex<T>],
    st: &Stage<T>,
    s: usize,
    table: &[Complex<T>],
) {
    let r = st.radix;
    let m = st.m;
    for p in 0..m {
        for j in 0..r {
            let w = st.twiddles[p * r + j];
            for q in 0..s {
                let mut acc = Complex::zero();
                for k in 0..r {
                    acc.mul_acc(src[q + s * (p + k * m)], table[j * r + k]);
                }
                dst[q + s * (r * p + j)] = acc * w;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dft::dft;
    use idg_types::Cf64;

    fn test_signal(n: usize) -> Vec<Cf64> {
        (0..n)
            .map(|i| {
                let x = i as f64;
                Cf64::new((0.3 * x).sin() + 0.1 * x, (0.7 * x).cos() - 0.05 * x)
            })
            .collect()
    }

    fn max_err(a: &[Cf64], b: &[Cf64]) -> f64 {
        let scale = b.iter().map(|c| c.abs()).fold(1.0, f64::max);
        a.iter()
            .zip(b)
            .map(|(x, y)| (*x - *y).abs())
            .fold(0.0, f64::max)
            / scale
    }

    #[test]
    fn factorization() {
        assert_eq!(factorize(24), Some(vec![4, 2, 3]));
        assert_eq!(factorize(2048), Some(vec![4, 4, 4, 4, 4, 2]));
        assert_eq!(factorize(15), Some(vec![3, 5]));
        assert_eq!(factorize(7), None);
        assert_eq!(factorize(1), Some(vec![]));
    }

    #[test]
    fn matches_dft_all_smooth_sizes() {
        for n in [
            2, 3, 4, 5, 6, 8, 9, 10, 12, 15, 16, 20, 24, 25, 27, 30, 32, 48, 60, 64, 120,
        ] {
            let plan = FftPlan::<f64>::new(n);
            assert!(!plan.is_bluestein(), "size {n} should be smooth");
            let mut data = test_signal(n);
            let expect = dft(&data, Direction::Forward);
            plan.forward(&mut data);
            assert!(max_err(&data, &expect) < 1e-12, "forward mismatch at n={n}");
        }
    }

    #[test]
    fn matches_dft_bluestein_sizes() {
        for n in [7, 11, 13, 17, 23, 31, 97, 101] {
            let plan = FftPlan::<f64>::new(n);
            assert!(plan.is_bluestein(), "size {n} should use Bluestein");
            let mut data = test_signal(n);
            let expect = dft(&data, Direction::Forward);
            plan.forward(&mut data);
            assert!(
                max_err(&data, &expect) < 1e-10,
                "bluestein mismatch at n={n}"
            );
        }
    }

    #[test]
    fn round_trip_inverse() {
        for n in [1, 2, 5, 7, 24, 64, 100, 101, 2048] {
            let plan = FftPlan::<f64>::new(n);
            let orig = test_signal(n);
            let mut data = orig.clone();
            plan.forward(&mut data);
            plan.inverse(&mut data);
            assert!(max_err(&data, &orig) < 1e-11, "round trip failed at n={n}");
        }
    }

    #[test]
    fn impulse_transforms_to_constant() {
        let n = 24;
        let plan = FftPlan::<f64>::new(n);
        let mut data = vec![Cf64::zero(); n];
        data[0] = Cf64::new(1.0, 0.0);
        plan.forward(&mut data);
        for v in &data {
            assert!((v.re - 1.0).abs() < 1e-13 && v.im.abs() < 1e-13);
        }
    }

    #[test]
    fn constant_transforms_to_impulse() {
        let n = 20;
        let plan = FftPlan::<f64>::new(n);
        let mut data = vec![Cf64::new(1.0, 0.0); n];
        plan.forward(&mut data);
        assert!((data[0].re - n as f64).abs() < 1e-12);
        for v in &data[1..] {
            assert!(v.abs() < 1e-12);
        }
    }

    #[test]
    fn single_tone_lands_in_right_bin() {
        let n = 48;
        let k0 = 7;
        let plan = FftPlan::<f64>::new(n);
        let mut data: Vec<Cf64> = (0..n)
            .map(|i| Cf64::from_phase(2.0 * std::f64::consts::PI * (k0 * i) as f64 / n as f64))
            .collect();
        plan.forward(&mut data);
        for (k, v) in data.iter().enumerate() {
            if k == k0 {
                assert!((v.re - n as f64).abs() < 1e-10);
            } else {
                assert!(v.abs() < 1e-10, "leakage at bin {k}");
            }
        }
    }

    #[test]
    fn parseval_energy_conservation() {
        let n = 120;
        let plan = FftPlan::<f64>::new(n);
        let orig = test_signal(n);
        let mut data = orig.clone();
        plan.forward(&mut data);
        let e_time: f64 = orig.iter().map(|c| c.norm_sqr()).sum();
        let e_freq: f64 = data.iter().map(|c| c.norm_sqr()).sum::<f64>() / n as f64;
        assert!((e_time - e_freq).abs() < 1e-9 * e_time);
    }

    #[test]
    fn linearity() {
        let n = 24;
        let plan = FftPlan::<f64>::new(n);
        let a = test_signal(n);
        let b: Vec<Cf64> = test_signal(n).iter().map(|c| c.mul_i()).collect();
        let mut fa = a.clone();
        let mut fb = b.clone();
        let mut fab: Vec<Cf64> = a.iter().zip(&b).map(|(x, y)| *x + *y).collect();
        plan.forward(&mut fa);
        plan.forward(&mut fb);
        plan.forward(&mut fab);
        let sum: Vec<Cf64> = fa.iter().zip(&fb).map(|(x, y)| *x + *y).collect();
        assert!(max_err(&fab, &sum) < 1e-12);
    }

    #[test]
    fn f32_plan_matches_f64_reference() {
        let n = 24;
        let plan32 = FftPlan::<f32>::new(n);
        let plan64 = FftPlan::<f64>::new(n);
        let sig = test_signal(n);
        let mut d32: Vec<Complex<f32>> = sig.iter().map(|c| c.cast()).collect();
        let mut d64 = sig;
        plan32.forward(&mut d32);
        plan64.forward(&mut d64);
        let scale = d64.iter().map(|c| c.abs()).fold(1.0, f64::max);
        for (a, b) in d32.iter().zip(&d64) {
            assert!((a.cast::<f64>() - *b).abs() / scale < 1e-5);
        }
    }

    #[test]
    fn process_with_scratch_reuses_buffer() {
        let n = 24;
        let plan = FftPlan::<f64>::new(n);
        let mut scratch = vec![Cf64::zero(); plan.scratch_len()];
        let mut a = test_signal(n);
        let mut b = test_signal(n);
        plan.process_with_scratch(&mut a, &mut scratch, Direction::Forward);
        plan.process_with_scratch(&mut b, &mut scratch, Direction::Forward);
        assert_eq!(a, b);
    }

    #[test]
    fn identity_plan() {
        let plan = FftPlan::<f64>::new(1);
        let mut data = vec![Cf64::new(3.0, 4.0)];
        plan.forward(&mut data);
        assert_eq!(data[0], Cf64::new(3.0, 4.0));
        plan.inverse(&mut data);
        assert_eq!(data[0], Cf64::new(3.0, 4.0));
    }

    #[test]
    #[should_panic(expected = "data length must equal plan length")]
    fn wrong_length_panics() {
        let plan = FftPlan::<f64>::new(8);
        let mut data = vec![Cf64::zero(); 4];
        plan.forward(&mut data);
    }
}
