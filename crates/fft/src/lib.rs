//! # idg-fft — a from-scratch FFT library for the IDG workspace
//!
//! The paper leans on vendor FFT libraries (Intel MKL on the CPU, cuFFT /
//! clFFT on the GPUs) for two jobs:
//!
//! 1. **subgrid FFTs** — four batched `Ñ × Ñ` transforms per subgrid
//!    (Ñ = 24 in the benchmark, i.e. 2³·3 — *not* a power of two), and
//! 2. the single large **grid FFT** per imaging cycle (2048², power of
//!    two).
//!
//! This crate replaces them with an auditable pure-Rust implementation:
//!
//! * [`FftPlan`] — a 1-D plan using the *Stockham autosort* mixed-radix
//!   algorithm (radices 4, 2, 3, 5) with precomputed per-stage twiddle
//!   tables; arbitrary remaining factors fall back to Bluestein's
//!   chirp-z algorithm, so every size is supported.
//! * [`Fft2d`] — row-column 2-D transforms over the planar polarization
//!   layout of `idg-types`, with a rayon-parallel batched entry point
//!   (the subgrid FFTs are "embarrassingly parallel", Sec. V-B c).
//! * [`shift`] — `fftshift`/`ifftshift` index permutations used when
//!   moving subgrids between image and Fourier domains.
//! * [`dft`] — an O(N²) direct transform, the correctness oracle.
//!
//! Conventions: `forward` applies `X[k] = Σ x[n]·e^{−2πi nk/N}` unscaled;
//! `inverse` applies the conjugate transform scaled by `1/N`, so
//! `inverse(forward(x)) == x`.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod bluestein;
pub mod dft;
pub mod fft2d;
pub mod plan;
pub mod shift;

pub use fft2d::Fft2d;
pub use plan::{Direction, FftPlan};
pub use shift::{fftshift2d, ifftshift2d};
