//! `fftshift` / `ifftshift` index permutations.
//!
//! The FFT places the zero frequency at index 0 while the grid convention
//! puts DC at the center pixel (`grid_size/2`). The adder/splitter and the
//! imaging cycle therefore shuttle subgrids and grids through these
//! permutations. For even sizes (the paper's 24 and 2048) the two shifts
//! coincide; the odd-size case is kept correct for generality.

use idg_types::{Complex, Float};

/// Circularly shift a row-major `n × n` plane by `(sy, sx)` pixels.
fn roll2d<T: Float>(data: &mut [Complex<T>], n: usize, sy: usize, sx: usize) {
    assert_eq!(data.len(), n * n);
    if (sy == 0 && sx == 0) || n == 0 {
        return;
    }
    let mut tmp = vec![Complex::<T>::zero(); n * n];
    for y in 0..n {
        let ny = (y + sy) % n;
        for x in 0..n {
            let nx = (x + sx) % n;
            tmp[ny * n + nx] = data[y * n + x];
        }
    }
    data.copy_from_slice(&tmp);
}

/// Move DC from index (0,0) to the center `(n/2, n/2)`.
pub fn fftshift2d<T: Float>(data: &mut [Complex<T>], n: usize) {
    roll2d(data, n, n / 2, n / 2);
}

/// Inverse of [`fftshift2d`] (distinct from it only for odd `n`).
pub fn ifftshift2d<T: Float>(data: &mut [Complex<T>], n: usize) {
    roll2d(data, n, n.div_ceil(2), n.div_ceil(2));
}

/// The fftshift *index map* without moving data: source index that lands
/// at `(y, x)` after an fftshift of an `n`-sized plane. The kernels use
/// this to fuse the shift into the subgrid store/load loops instead of
/// paying a separate permutation pass (the reference IDG code does the
/// same inside `kernel_gridder`).
#[inline(always)]
pub fn fftshift_source(n: usize, y: usize, x: usize) -> (usize, usize) {
    // After fftshift dst[(y + n/2) % n][(x + n/2) % n] = src[y][x]
    // so the source of dst (y,x) is ((y + n - n/2) % n, ...).
    let h = n - n / 2;
    ((y + h) % n, (x + h) % n)
}

#[cfg(test)]
mod tests {
    use super::*;
    use idg_types::Cf64;

    fn plane(n: usize) -> Vec<Cf64> {
        (0..n * n)
            .map(|i| Cf64::new(i as f64, -(i as f64)))
            .collect()
    }

    #[test]
    fn even_shift_moves_dc_to_center() {
        let n = 8;
        let mut d = vec![Cf64::zero(); n * n];
        d[0] = Cf64::new(1.0, 0.0);
        fftshift2d(&mut d, n);
        assert_eq!(d[(n / 2) * n + n / 2], Cf64::new(1.0, 0.0));
        assert_eq!(d[0], Cf64::zero());
    }

    #[test]
    fn even_shift_is_involution() {
        let n = 24;
        let orig = plane(n);
        let mut d = orig.clone();
        fftshift2d(&mut d, n);
        fftshift2d(&mut d, n);
        assert_eq!(d, orig);
    }

    #[test]
    fn odd_roundtrip_needs_ifftshift() {
        let n = 7;
        let orig = plane(n);
        let mut d = orig.clone();
        fftshift2d(&mut d, n);
        ifftshift2d(&mut d, n);
        assert_eq!(d, orig);

        let mut e = orig.clone();
        ifftshift2d(&mut e, n);
        fftshift2d(&mut e, n);
        assert_eq!(e, orig);
    }

    #[test]
    fn source_map_agrees_with_data_movement() {
        let n = 24;
        let orig = plane(n);
        let mut shifted = orig.clone();
        fftshift2d(&mut shifted, n);
        for y in 0..n {
            for x in 0..n {
                let (sy, sx) = fftshift_source(n, y, x);
                assert_eq!(shifted[y * n + x], orig[sy * n + sx], "at ({y},{x})");
            }
        }
    }

    #[test]
    fn source_map_odd_size() {
        let n = 5;
        let orig = plane(n);
        let mut shifted = orig.clone();
        fftshift2d(&mut shifted, n);
        for y in 0..n {
            for x in 0..n {
                let (sy, sx) = fftshift_source(n, y, x);
                assert_eq!(shifted[y * n + x], orig[sy * n + sx]);
            }
        }
    }

    #[test]
    fn zero_size_is_noop() {
        let mut d: Vec<Cf64> = vec![];
        fftshift2d(&mut d, 0);
        assert!(d.is_empty());
    }
}
