//! Direct O(N²) discrete Fourier transform — the correctness oracle.
//!
//! Every FFT path in this crate is validated against this routine; it is
//! also used directly by the telescope simulator to predict visibilities
//! from point-source sky models (where N is tiny and exactness matters
//! more than speed).

use crate::plan::Direction;
use idg_types::{Complex, Float};

/// Compute the DFT of `input` by direct summation.
///
/// Forward: `X[k] = Σ_n x[n]·e^{−2πi nk/N}` (unscaled).
/// Inverse: `x[n] = (1/N)·Σ_k X[k]·e^{+2πi nk/N}`.
pub fn dft<T: Float>(input: &[Complex<T>], dir: Direction) -> Vec<Complex<T>> {
    let n = input.len();
    let sign = match dir {
        Direction::Forward => -1.0,
        Direction::Inverse => 1.0,
    };
    let mut out = Vec::with_capacity(n);
    for k in 0..n {
        let mut acc = Complex::<T>::zero();
        for (j, x) in input.iter().enumerate() {
            // exact modular phase index avoids large-angle error
            let idx = (j * k) % n;
            let theta = sign * 2.0 * std::f64::consts::PI * idx as f64 / n as f64;
            let w = Complex::new(T::from_f64(theta.cos()), T::from_f64(theta.sin()));
            acc.mul_acc(*x, w);
        }
        out.push(acc);
    }
    if matches!(dir, Direction::Inverse) {
        let scale = T::ONE / T::from_usize(n);
        for v in &mut out {
            *v = v.scale(scale);
        }
    }
    out
}

/// Direct 2-D DFT of a row-major `n × n` array (test oracle for
/// [`crate::Fft2d`]).
pub fn dft2d<T: Float>(input: &[Complex<T>], n: usize, dir: Direction) -> Vec<Complex<T>> {
    assert_eq!(input.len(), n * n);
    // rows
    let mut rows: Vec<Complex<T>> = Vec::with_capacity(n * n);
    for y in 0..n {
        rows.extend(dft(&input[y * n..(y + 1) * n], dir));
    }
    // columns
    let mut out = vec![Complex::<T>::zero(); n * n];
    let mut col = vec![Complex::<T>::zero(); n];
    for x in 0..n {
        for y in 0..n {
            col[y] = rows[y * n + x];
        }
        let t = dft(&col, dir);
        for y in 0..n {
            out[y * n + x] = t[y];
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use idg_types::Cf64;

    #[test]
    fn dft_round_trip() {
        let x: Vec<Cf64> = (0..9)
            .map(|i| Cf64::new(i as f64, (i * i % 5) as f64))
            .collect();
        let fwd = dft(&x, Direction::Forward);
        let back = dft(&fwd, Direction::Inverse);
        for (a, b) in back.iter().zip(&x) {
            assert!((*a - *b).abs() < 1e-12);
        }
    }

    #[test]
    fn dft_of_impulse() {
        let mut x = vec![Cf64::zero(); 5];
        x[0] = Cf64::new(2.0, 0.0);
        let fwd = dft(&x, Direction::Forward);
        for v in fwd {
            assert!((v - Cf64::new(2.0, 0.0)).abs() < 1e-13);
        }
    }

    #[test]
    fn dft2d_round_trip() {
        let n = 6;
        let x: Vec<Cf64> = (0..n * n)
            .map(|i| Cf64::new((i as f64 * 0.3).sin(), (i as f64 * 0.11).cos()))
            .collect();
        let fwd = dft2d(&x, n, Direction::Forward);
        let back = dft2d(&fwd, n, Direction::Inverse);
        for (a, b) in back.iter().zip(&x) {
            assert!((*a - *b).abs() < 1e-12);
        }
    }

    #[test]
    fn dft2d_separable_tone() {
        // e^{2πi(k0·x + l0·y)/n} concentrates into bin (l0, k0).
        let n = 8;
        let (k0, l0) = (3usize, 5usize);
        let x: Vec<Cf64> = (0..n * n)
            .map(|i| {
                let (xx, yy) = (i % n, i / n);
                Cf64::from_phase(
                    2.0 * std::f64::consts::PI * ((k0 * xx + l0 * yy) % n) as f64 / n as f64,
                )
            })
            .collect();
        let fwd = dft2d(&x, n, Direction::Forward);
        for yy in 0..n {
            for xx in 0..n {
                let v = fwd[yy * n + xx];
                if (xx, yy) == (k0, l0) {
                    assert!((v.re - (n * n) as f64).abs() < 1e-9);
                } else {
                    assert!(v.abs() < 1e-9, "leakage at ({xx},{yy})");
                }
            }
        }
    }
}
