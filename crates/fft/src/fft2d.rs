//! 2-D transforms: the subgrid FFTs and the grid FFT.
//!
//! IDG Fourier-transforms every subgrid (4 polarization planes of
//! `Ñ × Ñ`) between the image and Fourier domains — step (2) of the
//! algorithm — and the imaging cycle transforms the full `N × N` grid
//! once per gridding/degridding pass. Both are row-column decompositions
//! of the 1-D plans; the batched entry point parallelizes over planes
//! with rayon, matching the paper's observation that the subgrid FFTs are
//! embarrassingly parallel.

use crate::plan::{Direction, FftPlan};
use idg_types::{Complex, Float};
use rayon::prelude::*;

/// A 2-D FFT plan for square `n × n` arrays.
pub struct Fft2d<T> {
    n: usize,
    plan: FftPlan<T>,
}

impl<T: Float> Fft2d<T> {
    /// Build a plan for `n × n` transforms.
    pub fn new(n: usize) -> Self {
        Self {
            n,
            plan: FftPlan::new(n),
        }
    }

    /// Edge length.
    #[inline]
    pub fn size(&self) -> usize {
        self.n
    }

    /// Scratch length required per worker by the `_with_scratch` variants.
    pub fn scratch_len(&self) -> usize {
        // column gather buffer + 1-D scratch
        self.n + self.plan.scratch_len()
    }

    /// Transform one row-major `n × n` plane in place using caller scratch.
    pub fn process_with_scratch(
        &self,
        data: &mut [Complex<T>],
        scratch: &mut [Complex<T>],
        dir: Direction,
    ) {
        let n = self.n;
        assert_eq!(data.len(), n * n, "plane must be n*n");
        assert!(scratch.len() >= self.scratch_len());
        let (col, fft_scratch) = scratch.split_at_mut(n);

        // rows: contiguous
        for row in data.chunks_exact_mut(n) {
            self.plan.process_with_scratch(row, fft_scratch, dir);
        }
        // columns: gather / transform / scatter
        for x in 0..n {
            for y in 0..n {
                col[y] = data[y * n + x];
            }
            self.plan.process_with_scratch(col, fft_scratch, dir);
            for y in 0..n {
                data[y * n + x] = col[y];
            }
        }
    }

    /// Transform one plane, allocating scratch internally.
    pub fn process(&self, data: &mut [Complex<T>], dir: Direction) {
        let mut scratch = vec![Complex::zero(); self.scratch_len()];
        self.process_with_scratch(data, &mut scratch, dir);
    }

    /// Transform a batch of independent `n × n` planes in parallel —
    /// the subgrid-FFT step. `planes.len()` must be a multiple of `n²`.
    pub fn process_batch(&self, planes: &mut [Complex<T>], dir: Direction) {
        let n2 = self.n * self.n;
        assert_eq!(planes.len() % n2, 0, "batch must be whole planes");
        planes.par_chunks_exact_mut(n2).for_each_init(
            || vec![Complex::zero(); self.scratch_len()],
            |scratch, plane| {
                self.process_with_scratch(plane, scratch, dir);
            },
        );
    }

    /// Transform the full grid in parallel: rows of all polarization
    /// planes first, then columns. Used for the one big grid FFT of the
    /// imaging cycle where per-plane parallelism (4 planes) is too coarse.
    pub fn process_grid(&self, planes: &mut [Complex<T>], dir: Direction) {
        let n = self.n;
        let n2 = n * n;
        assert_eq!(planes.len() % n2, 0, "grid must be whole planes");

        // rows of every plane, in parallel
        planes.par_chunks_exact_mut(n).for_each_init(
            || vec![Complex::zero(); self.plan.scratch_len()],
            |scratch, row| {
                self.plan.process_with_scratch(row, scratch, dir);
            },
        );

        // columns: parallelize over planes × column-blocks via gather
        for plane in planes.chunks_exact_mut(n2) {
            // Split columns among workers; each gathers its column set.
            let plane_cell = &*plane; // read view for gather
            let cols: Vec<Vec<Complex<T>>> = (0..n)
                .into_par_iter()
                .map_init(
                    || vec![Complex::zero(); n + self.plan.scratch_len()],
                    |buf, x| {
                        let (col, fft_scratch) = buf.split_at_mut(n);
                        for y in 0..n {
                            col[y] = plane_cell[y * n + x];
                        }
                        self.plan.process_with_scratch(col, fft_scratch, dir);
                        col.to_vec()
                    },
                )
                .collect();
            for (x, col) in cols.iter().enumerate() {
                for y in 0..n {
                    plane[y * n + x] = col[y];
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dft::dft2d;
    use idg_types::Cf64;

    fn signal2d(n: usize) -> Vec<Cf64> {
        (0..n * n)
            .map(|i| Cf64::new((i as f64 * 0.13).sin(), (i as f64 * 0.07).cos() * 0.5))
            .collect()
    }

    fn assert_close(a: &[Cf64], b: &[Cf64], tol: f64) {
        let scale = b.iter().map(|c| c.abs()).fold(1.0, f64::max);
        for (i, (x, y)) in a.iter().zip(b).enumerate() {
            assert!((*x - *y).abs() / scale < tol, "mismatch at {i}: {x} vs {y}");
        }
    }

    #[test]
    fn matches_direct_2d_dft() {
        for n in [4usize, 6, 8, 12, 24] {
            let fft = Fft2d::<f64>::new(n);
            let x = signal2d(n);
            let mut got = x.clone();
            fft.process(&mut got, Direction::Forward);
            let expect = dft2d(&x, n, Direction::Forward);
            assert_close(&got, &expect, 1e-11);
        }
    }

    #[test]
    fn round_trip_2d() {
        for n in [7usize, 24, 32] {
            let fft = Fft2d::<f64>::new(n);
            let x = signal2d(n);
            let mut got = x.clone();
            fft.process(&mut got, Direction::Forward);
            fft.process(&mut got, Direction::Inverse);
            assert_close(&got, &x, 1e-11);
        }
    }

    #[test]
    fn batch_matches_single() {
        let n = 24;
        let fft = Fft2d::<f64>::new(n);
        let plane_a = signal2d(n);
        let plane_b: Vec<Cf64> = signal2d(n).iter().map(|c| c.conj()).collect();

        let mut batch: Vec<Cf64> = plane_a.iter().chain(plane_b.iter()).copied().collect();
        fft.process_batch(&mut batch, Direction::Forward);

        let mut ea = plane_a;
        let mut eb = plane_b;
        fft.process(&mut ea, Direction::Forward);
        fft.process(&mut eb, Direction::Forward);
        assert_close(&batch[..n * n], &ea, 1e-12);
        assert_close(&batch[n * n..], &eb, 1e-12);
    }

    #[test]
    fn grid_path_matches_plane_path() {
        let n = 32;
        let fft = Fft2d::<f64>::new(n);
        let x = signal2d(n);
        let mut a = x.clone();
        let mut b = x;
        fft.process(&mut a, Direction::Forward);
        fft.process_grid(&mut b, Direction::Forward);
        assert_close(&b, &a, 1e-12);
    }

    #[test]
    fn dc_component_is_plane_sum() {
        let n = 12;
        let fft = Fft2d::<f64>::new(n);
        let x = signal2d(n);
        let sum: Cf64 = x.iter().copied().sum();
        let mut got = x;
        fft.process(&mut got, Direction::Forward);
        assert!((got[0] - sum).abs() < 1e-10);
    }

    #[test]
    #[should_panic(expected = "plane must be n*n")]
    fn wrong_plane_size_panics() {
        let fft = Fft2d::<f64>::new(8);
        let mut data = vec![Cf64::zero(); 60];
        fft.process(&mut data, Direction::Forward);
    }
}
