//! Bluestein's chirp-z algorithm for arbitrary transform lengths.
//!
//! Sizes with prime factors larger than 5 (not used by the paper's
//! benchmark configuration, but allowed by the public API — e.g. a user
//! choosing a 1022-pixel grid) are handled by re-expressing the DFT as a
//! convolution of chirp sequences, evaluated with a power-of-two FFT:
//!
//! `X[k] = w*[k] · IFFT( FFT(w·x) ⊙ B )[k]`, `w[j] = e^{−iπ j²/N}`,
//! where `B` is the precomputed FFT of the conjugate chirp.

use crate::plan::{Direction, FftPlan};
use idg_types::{Complex, Float};

/// Precomputed Bluestein plan for one length.
pub struct BluesteinPlan<T> {
    n: usize,
    /// Power-of-two convolution length ≥ 2n − 1.
    m: usize,
    /// Chirp `w[j] = e^{−iπ j²/n}`, j ∈ [0, n).
    chirp: Vec<Complex<T>>,
    /// FFT of the zero-padded conjugate chirp, pre-scaled by `1/m` so the
    /// inverse convolution FFT can skip its scaling pass.
    b_fft: Vec<Complex<T>>,
    /// Inner power-of-two plan of length `m`.
    inner: FftPlan<T>,
}

fn next_pow2(mut v: usize) -> usize {
    let mut p = 1;
    while p < v {
        p <<= 1;
    }
    let _ = &mut v;
    p
}

impl<T: Float> BluesteinPlan<T> {
    /// Build a Bluestein plan for length `n ≥ 2`.
    pub fn new(n: usize) -> Self {
        assert!(n >= 2);
        let m = next_pow2(2 * n - 1);
        // w[j] = e^{−iπ j²/n}; compute j² mod 2n to keep angles small.
        let chirp: Vec<Complex<T>> = (0..n)
            .map(|j| {
                let idx = (j * j) % (2 * n);
                let theta = -std::f64::consts::PI * idx as f64 / n as f64;
                Complex::new(T::from_f64(theta.cos()), T::from_f64(theta.sin()))
            })
            .collect();

        let inner = FftPlan::<T>::new(m);
        debug_assert!(!inner.is_bluestein(), "inner plan must be power-of-two");

        // b[j] = conj(w[j]) for j in 0..n, mirrored at m−j; zero elsewhere.
        let mut b = vec![Complex::<T>::zero(); m];
        for (j, w) in chirp.iter().enumerate() {
            b[j] = w.conj();
            if j != 0 {
                b[m - j] = w.conj();
            }
        }
        inner.forward(&mut b);
        let inv_m = T::ONE / T::from_usize(m);
        for v in &mut b {
            *v = v.scale(inv_m);
        }

        Self {
            n,
            m,
            chirp,
            b_fft: b,
            inner,
        }
    }

    /// Scratch length required by [`Self::forward`].
    pub fn scratch_len(&self) -> usize {
        // one m-length work buffer + the inner plan's scratch
        self.m + self.inner.scratch_len()
    }

    /// Forward transform of `data` (length `n`), unscaled.
    pub fn forward(&self, data: &mut [Complex<T>], scratch: &mut [Complex<T>]) {
        assert_eq!(data.len(), self.n);
        let (work, inner_scratch) = scratch.split_at_mut(self.m);

        // a[j] = w[j]·x[j], zero-padded to m
        for j in 0..self.n {
            work[j] = data[j] * self.chirp[j];
        }
        for v in &mut work[self.n..] {
            *v = Complex::zero();
        }

        self.inner
            .process_with_scratch(work, inner_scratch, Direction::Forward);
        // pointwise multiply by the precomputed (1/m)·FFT(b)
        for (a, b) in work.iter_mut().zip(self.b_fft.iter()) {
            *a *= *b;
        }
        // inverse FFT without scaling: conj→forward→conj (the 1/m is
        // already folded into b_fft)
        for v in work.iter_mut() {
            *v = v.conj();
        }
        self.inner
            .process_with_scratch(work, inner_scratch, Direction::Forward);
        for j in 0..self.n {
            data[j] = work[j].conj() * self.chirp[j];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dft::dft;
    use idg_types::Cf64;

    #[test]
    fn next_pow2_values() {
        assert_eq!(next_pow2(1), 1);
        assert_eq!(next_pow2(2), 2);
        assert_eq!(next_pow2(3), 4);
        assert_eq!(next_pow2(13), 16);
        assert_eq!(next_pow2(16), 16);
        assert_eq!(next_pow2(17), 32);
    }

    #[test]
    fn prime_sizes_match_dft() {
        for n in [2usize, 3, 7, 13, 29, 53] {
            let plan = BluesteinPlan::<f64>::new(n);
            let x: Vec<Cf64> = (0..n)
                .map(|i| Cf64::new((i as f64).sin() + 1.0, (i as f64 * 0.5).cos()))
                .collect();
            let mut got = x.clone();
            let mut scratch = vec![Cf64::zero(); plan.scratch_len()];
            plan.forward(&mut got, &mut scratch);
            let expect = dft(&x, Direction::Forward);
            for (a, b) in got.iter().zip(&expect) {
                assert!((*a - *b).abs() < 1e-10, "n={n}");
            }
        }
    }

    #[test]
    fn large_prime() {
        let n = 251;
        let plan = BluesteinPlan::<f64>::new(n);
        let x: Vec<Cf64> = (0..n)
            .map(|i| Cf64::new((i % 17) as f64, (i % 5) as f64))
            .collect();
        let mut got = x.clone();
        let mut scratch = vec![Cf64::zero(); plan.scratch_len()];
        plan.forward(&mut got, &mut scratch);
        let expect = dft(&x, Direction::Forward);
        let scale = expect.iter().map(|c| c.abs()).fold(1.0, f64::max);
        for (a, b) in got.iter().zip(&expect) {
            assert!((*a - *b).abs() / scale < 1e-11);
        }
    }

    #[test]
    fn chirp_is_unit_magnitude() {
        let plan = BluesteinPlan::<f64>::new(23);
        for w in &plan.chirp {
            assert!((w.abs() - 1.0).abs() < 1e-14);
        }
    }
}
