//! Property-based tests of the FFT substrate: random signals, random
//! (smooth and prime) sizes, checked against the mathematical
//! invariants and the O(N²) DFT oracle.

use idg_fft::dft::dft;
use idg_fft::{Direction, Fft2d, FftPlan};
use idg_types::Cf64;
use proptest::prelude::*;

fn signal(n: usize, seed: u64) -> Vec<Cf64> {
    // deterministic pseudo-random signal without pulling in rand
    let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1);
    (0..n)
        .map(|_| {
            let mut next = || {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                (state as f64 / u64::MAX as f64) * 2.0 - 1.0
            };
            Cf64::new(next(), next())
        })
        .collect()
}

fn max_rel_err(a: &[Cf64], b: &[Cf64]) -> f64 {
    let scale = b.iter().map(|c| c.abs()).fold(1.0, f64::max);
    a.iter()
        .zip(b)
        .map(|(x, y)| (*x - *y).abs())
        .fold(0.0, f64::max)
        / scale
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    #[test]
    fn forward_matches_dft_for_any_size(n in 2usize..200, seed in 0u64..1_000_000) {
        let plan = FftPlan::<f64>::new(n);
        let x = signal(n, seed);
        let mut got = x.clone();
        plan.forward(&mut got);
        let expect = dft(&x, Direction::Forward);
        prop_assert!(max_rel_err(&got, &expect) < 1e-9, "n={n}");
    }

    #[test]
    fn round_trip_for_any_size(n in 1usize..300, seed in 0u64..1_000_000) {
        let plan = FftPlan::<f64>::new(n);
        let x = signal(n, seed);
        let mut got = x.clone();
        plan.forward(&mut got);
        plan.inverse(&mut got);
        prop_assert!(max_rel_err(&got, &x) < 1e-10, "n={n}");
    }

    #[test]
    fn parseval_for_any_size(n in 2usize..256, seed in 0u64..1_000_000) {
        let plan = FftPlan::<f64>::new(n);
        let x = signal(n, seed);
        let mut f = x.clone();
        plan.forward(&mut f);
        let e_time: f64 = x.iter().map(|c| c.norm_sqr()).sum();
        let e_freq: f64 = f.iter().map(|c| c.norm_sqr()).sum::<f64>() / n as f64;
        prop_assert!((e_time - e_freq).abs() < 1e-8 * e_time.max(1.0));
    }

    #[test]
    fn time_shift_is_frequency_phase_ramp(
        n in 4usize..128,
        shift in 1usize..16,
        seed in 0u64..1_000_000,
    ) {
        // x[(i + s) mod n]  ⇔  X[k]·e^{+2πi k s / n}
        let shift = shift % n;
        let plan = FftPlan::<f64>::new(n);
        let x = signal(n, seed);
        let shifted: Vec<Cf64> = (0..n).map(|i| x[(i + shift) % n]).collect();

        let mut fx = x.clone();
        plan.forward(&mut fx);
        let mut fs = shifted;
        plan.forward(&mut fs);

        let expected: Vec<Cf64> = fx
            .iter()
            .enumerate()
            .map(|(k, v)| {
                let theta = 2.0 * std::f64::consts::PI * (k * shift % n) as f64 / n as f64;
                *v * Cf64::from_phase(theta)
            })
            .collect();
        prop_assert!(max_rel_err(&fs, &expected) < 1e-9, "n={n} shift={shift}");
    }

    #[test]
    fn conjugation_mirrors_spectrum(n in 2usize..128, seed in 0u64..1_000_000) {
        // FFT(conj(x))[k] = conj(FFT(x)[(n−k) mod n])
        let plan = FftPlan::<f64>::new(n);
        let x = signal(n, seed);
        let mut fx = x.clone();
        plan.forward(&mut fx);
        let mut fc: Vec<Cf64> = x.iter().map(|c| c.conj()).collect();
        plan.forward(&mut fc);
        let expected: Vec<Cf64> =
            (0..n).map(|k| fx[(n - k) % n].conj()).collect();
        prop_assert!(max_rel_err(&fc, &expected) < 1e-9);
    }

    #[test]
    fn fft2d_round_trip(n in 2usize..40, seed in 0u64..1_000_000) {
        let fft = Fft2d::<f64>::new(n);
        let x = signal(n * n, seed);
        let mut got = x.clone();
        fft.process(&mut got, Direction::Forward);
        fft.process(&mut got, Direction::Inverse);
        prop_assert!(max_rel_err(&got, &x) < 1e-10, "n={n}");
    }

    #[test]
    fn fftshift_involution_even_sizes(half in 1usize..24, seed in 0u64..1_000_000) {
        let n = half * 2;
        let orig = signal(n * n, seed);
        let mut data = orig.clone();
        idg_fft::fftshift2d(&mut data, n);
        idg_fft::fftshift2d(&mut data, n);
        prop_assert_eq!(data, orig);
    }
}
