//! The paper's benchmark scenario: an SKA1-low-style snapshot survey
//! gridded on every back-end — measured on the host CPU, modeled on the
//! HASWELL/FIJI/PASCAL device models — reproducing the Fig. 9/10
//! comparison at example scale.
//!
//! ```sh
//! cargo run --release --example ska1_low_survey
//! ```

use idg::telescope::Dataset;
use idg::{Backend, Proxy};

fn main() {
    // scale 12 → 12 stations, 56 time steps, 16 channels, 24² subgrids
    let ds = Dataset::representative(12, 2026).expect("representative dataset");
    println!(
        "SKA1-low-like benchmark: {} stations ({} baselines), {} steps, {} channels, {}² grid",
        ds.obs.nr_stations,
        ds.obs.nr_baselines(),
        ds.obs.nr_timesteps,
        ds.obs.nr_channels(),
        ds.obs.grid_size,
    );

    let mut grids = Vec::new();
    for backend in Backend::all() {
        let proxy = Proxy::new(backend, ds.obs.clone()).expect("proxy");
        let plan = proxy.plan(&ds.uvw).expect("plan");
        let (grid, g_report) = proxy
            .grid(&plan, &ds.uvw, &ds.visibilities, &ds.aterms)
            .expect("gridding");
        let (_, d_report) = proxy
            .degrid(&plan, &grid, &ds.uvw, &ds.aterms)
            .expect("degridding");
        println!("\n{g_report}{d_report}");
        grids.push((backend, grid));
    }

    // every back-end agrees on the numbers
    let (_, reference) = &grids[0];
    let scale = reference
        .as_slice()
        .iter()
        .map(|c| c.abs())
        .fold(1e-9f32, f32::max);
    for (backend, grid) in &grids[1..] {
        let max_err = grid
            .as_slice()
            .iter()
            .zip(reference.as_slice())
            .map(|(a, b)| (*a - *b).abs() / scale)
            .fold(0.0f32, f32::max);
        println!("{backend:?} vs reference: max relative grid error {max_err:.2e}");
        assert!(max_err < 5e-3);
    }
    println!("\nOK: all four back-ends produced numerically equivalent grids.");
}
