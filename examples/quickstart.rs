//! Quickstart: simulate a small observation, grid it with IDG, image it,
//! and find the injected sources.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use idg::telescope::{Dataset, IdentityATerm, Layout, PointSource, SkyModel};
use idg::types::Observation;
use idg::{Backend, Proxy};
use idg_imaging::{dirty_image, Image};

fn main() {
    // 1. Describe the observation: 8 stations, 64 time steps, 4 channels,
    //    a 256² grid with 16² IDG subgrids over a 2.9° field of view.
    let obs = Observation::builder()
        .stations(8)
        .timesteps(64)
        .channels(4, 150e6, 2e6)
        .grid_size(256)
        .subgrid_size(16)
        .kernel_size(5)
        .aterm_interval(32)
        .image_size(0.05)
        .build()
        .expect("valid observation");

    // 2. Simulate visibilities for two point sources.
    let sky = SkyModel {
        sources: vec![
            PointSource {
                l: 0.006,
                m: 0.004,
                flux: 3.0,
            },
            PointSource {
                l: -0.009,
                m: 0.002,
                flux: 1.5,
            },
        ],
    };
    let layout = Layout::uniform(obs.nr_stations, 1200.0, 1);
    let ds = Dataset::simulate(obs.clone(), &layout, sky, &IdentityATerm);
    println!(
        "simulated {} visibilities on layout {}",
        ds.nr_visibilities(),
        layout.name
    );

    // 3. Grid with the optimized CPU back-end.
    let proxy = Proxy::new(Backend::CpuOptimized, obs.clone()).expect("proxy");
    let plan = proxy.plan(&ds.uvw).expect("plan");
    println!("\nexecution plan:\n{}", plan.stats());
    let (grid, report) = proxy
        .grid(&plan, &ds.uvw, &ds.visibilities, &ds.aterms)
        .expect("gridding");
    println!("\n{report}");

    // 4. Image and locate the sources.
    let image = dirty_image(&grid, &obs, plan.nr_gridded_visibilities());
    let (px, py, peak) = image.peak();
    println!(
        "dirty-image peak: {:.2} Jy at pixel ({px}, {py}) = (l, m) ({:+.4}, {:+.4}) rad",
        peak,
        Image::pixel_to_lm(&obs, px),
        Image::pixel_to_lm(&obs, py),
    );
    println!(
        "expected: 3.00 Jy near pixel ({}, {})",
        Image::lm_to_pixel(&obs, 0.006),
        Image::lm_to_pixel(&obs, 0.004)
    );
    assert!((peak - 3.0).abs() < 0.3, "source recovered");
    println!("\nOK: the brightest injected source was recovered.");
}
