//! Generate-once, benchmark-many: persist a simulated data set to disk
//! and prove reloading reproduces bit-identical gridding.
//!
//! ```sh
//! cargo run --release --example dataset_persistence
//! ```

use idg::telescope::{load_dataset, save_dataset, Dataset, NoiseModel};
use idg::{Backend, Proxy};

fn main() {
    // simulate + corrupt with thermal noise
    let mut ds = Dataset::representative(15, 7).expect("representative dataset");
    let noise = NoiseModel {
        sefd_jy: 2000.0,
        seed: 99,
    };
    let sigma = noise.corrupt(&ds.obs.clone(), &mut ds.visibilities);
    println!(
        "simulated {} visibilities ({} baselines × {} steps × {} channels), noise σ = {sigma:.2} Jy",
        ds.nr_visibilities(),
        ds.obs.nr_baselines(),
        ds.obs.nr_timesteps,
        ds.obs.nr_channels()
    );

    // persist
    let dir = std::env::temp_dir().join("idg-example");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join("observation.idg");
    save_dataset(&ds, &path).expect("save");
    let bytes = std::fs::metadata(&path).expect("stat").len();
    println!("wrote {} ({:.1} MB)", path.display(), bytes as f64 / 1e6);

    // reload and grid both copies
    let reloaded = load_dataset(&path).expect("load");
    let proxy = Proxy::new(Backend::CpuOptimized, ds.obs.clone()).expect("proxy");
    let plan = proxy.plan(&ds.uvw).expect("plan");

    let (grid_a, report) = proxy
        .grid(&plan, &ds.uvw, &ds.visibilities, &ds.aterms)
        .expect("gridding original");
    let (grid_b, _) = proxy
        .grid(
            &plan,
            &reloaded.uvw,
            &reloaded.visibilities,
            &reloaded.aterms,
        )
        .expect("gridding reloaded");

    assert_eq!(grid_a.as_slice(), grid_b.as_slice());
    println!(
        "reloaded data grids bit-identically ({:.2} MVis/s on this host)",
        report.mvis_per_sec()
    );

    std::fs::remove_file(&path).ok();
    println!("\nOK: the on-disk format round-trips exactly.");
}
