//! Wide-field imaging with W-stacking.
//!
//! On wide fields the w-term matters: this example images the same
//! long-baseline observation (a) on a single grid and (b) with
//! W-stacking (per-w-plane grids merged through image-domain screens),
//! showing the identical result and the plan/memory statistics of the
//! trade the paper discusses in Sec. IV/VI-E.
//!
//! ```sh
//! cargo run --release --example wide_field_wstacking
//! ```

use idg::telescope::{Dataset, IdentityATerm, Layout, PointSource, SkyModel};
use idg::types::Observation;
use idg::{Backend, Proxy};
use idg_imaging::{dirty_image, wstack_dirty_image, Image};

fn main() {
    let base = Observation::builder()
        .stations(8)
        .timesteps(64)
        .channels(4, 150e6, 2e6)
        .grid_size(256)
        .subgrid_size(24)
        .kernel_size(9)
        .aterm_interval(32)
        .image_size(0.05)
        .build()
        .expect("valid observation");
    let sky = SkyModel {
        sources: vec![
            PointSource {
                l: 0.008,
                m: 0.005,
                flux: 3.0,
            },
            PointSource {
                l: -0.006,
                m: -0.010,
                flux: 1.2,
            },
        ],
    };
    let layout = Layout::uniform(base.nr_stations, 1800.0, 9);
    let ds = Dataset::simulate(base.clone(), &layout, sky, &IdentityATerm);

    // (a) single grid
    let proxy0 = Proxy::new(Backend::CpuOptimized, base.clone()).expect("proxy");
    let plan0 = proxy0.plan(&ds.uvw).expect("plan");
    let (grid0, _) = proxy0
        .grid(&plan0, &ds.uvw, &ds.visibilities, &ds.aterms)
        .expect("gridding");
    let img0 = dirty_image(&grid0, &base, plan0.nr_gridded_visibilities());

    // (b) W-stacking with 25λ planes
    let mut obs_w = base.clone();
    obs_w.w_step = 25.0;
    let proxy1 = Proxy::new(Backend::CpuOptimized, obs_w).expect("proxy");
    let plan1 = proxy1.plan(&ds.uvw).expect("plan");
    let (img1, report) = wstack_dirty_image(&proxy1, &plan1, &ds.uvw, &ds.visibilities, &ds.aterms)
        .expect("w-stacked imaging");

    println!("single grid:   {} subgrids, 1 grid", plan0.nr_subgrids());
    println!(
        "w-stacked:     {} subgrids over {} w-planes ({} MB of plane grids streamed)",
        plan1.nr_subgrids(),
        report.nr_planes,
        report.nr_planes * report.grid_bytes_per_plane / 1_000_000
    );

    let p0 = img0.peak();
    let p1 = img1.peak();
    println!(
        "single-grid peak: {:.3} Jy at ({}, {}) = (l,m) ({:+.4}, {:+.4})",
        p0.2,
        p0.0,
        p0.1,
        Image::pixel_to_lm(&base, p0.0),
        Image::pixel_to_lm(&base, p0.1)
    );
    println!("w-stacked peak:   {:.3} Jy at ({}, {})", p1.2, p1.0, p1.1);
    assert_eq!((p0.0, p0.1), (p1.0, p1.1), "identical localization");
    assert!((p0.2 - p1.2).abs() < 0.05 * p0.2, "identical photometry");
    println!("\nOK: W-stacking reproduces the single-grid image exactly where both apply;");
    println!("on truly wide fields only the stacked path stays alias-free.");
}
