//! The full imaging cycle of the paper's Fig. 2: grid → image → CLEAN →
//! predict (degrid) → subtract, repeated until the sky model converges.
//!
//! ```sh
//! cargo run --release --example imaging_cycle
//! ```

use idg::telescope::{Dataset, IdentityATerm, Layout, SkyModel};
use idg::types::Observation;
use idg::{Backend, Proxy};
use idg_imaging::{CleanParams, Image, ImagingCycle};

fn main() {
    let obs = Observation::builder()
        .stations(10)
        .timesteps(64)
        .channels(4, 150e6, 2e6)
        .grid_size(256)
        .subgrid_size(16)
        .kernel_size(5)
        .aterm_interval(32)
        .image_size(0.05)
        .build()
        .expect("valid observation");
    let layout = Layout::ska1_low(obs.nr_stations, 800.0, 8000.0, 5);
    let sky = SkyModel::random(&obs, 6, 0.5, 11);
    println!(
        "injected sky: {} sources, total flux {:.2} Jy",
        sky.len(),
        sky.total_flux()
    );
    let injected_flux = sky.total_flux();
    let ds = Dataset::simulate(obs.clone(), &layout, sky, &IdentityATerm);

    let proxy = Proxy::new(Backend::CpuOptimized, obs.clone()).expect("proxy");
    let plan = proxy.plan(&ds.uvw).expect("plan");
    let cycle = ImagingCycle::new(&proxy, &plan, &ds.uvw, &ds.aterms);
    let clean = CleanParams {
        gain: 0.2,
        max_iterations: 300,
        threshold: 0.05,
        search_border: 0.25,
    };

    let report = cycle.run(&ds.visibilities, 4, &clean).expect("imaging run");

    println!("\nresidual RMS per major cycle:");
    for (i, rms) in report.residual_rms.iter().enumerate() {
        println!("  cycle {i}: {rms:.5} Jy/beam");
    }
    println!(
        "\nsky model: {} components, {:.2} Jy recovered of {:.2} Jy injected ({:.1} %)",
        report.components.len(),
        report.model_flux(),
        injected_flux,
        100.0 * report.model_flux() / injected_flux
    );

    let mut top = report.components.clone();
    top.sort_by(|a, b| b.flux.total_cmp(&a.flux));
    println!("\nbrightest components:");
    for c in top.iter().take(5) {
        println!(
            "  ({:>3}, {:>3}) -> (l, m) ({:+.4}, {:+.4}) rad: {:.3} Jy",
            c.x,
            c.y,
            Image::pixel_to_lm(&obs, c.x),
            Image::pixel_to_lm(&obs, c.y),
            c.flux
        );
    }

    let (g, d, f, a, t) = report.stage_totals();
    println!("\nstage totals (Fig. 9 decomposition):");
    println!("  gridder {g:.3} s  degridder {d:.3} s  fft {f:.3} s  adder/splitter {a:.3} s  transfer {t:.3} s");
    let share = (g + d) / (g + d + f + a + t);
    println!(
        "  gridder+degridder share: {:.1} % (paper: > 93 %)",
        100.0 * share
    );
}
