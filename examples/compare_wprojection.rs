//! IDG versus the classic W-projection gridder on the same data —
//! the algorithmic comparison behind the paper's Fig. 16.
//!
//! Both gridders image the same simulated visibilities; the example
//! verifies they localize the source identically and reports measured
//! throughput plus the W-kernel storage W-projection had to precompute
//! (the overhead IDG eliminates).
//!
//! ```sh
//! cargo run --release --example compare_wprojection
//! ```

use idg::fft::{fftshift2d, ifftshift2d, Direction, Fft2d};
use idg::telescope::{Dataset, IdentityATerm, Layout, SkyModel};
use idg::types::{Cf32, Observation, SPEED_OF_LIGHT};
use idg::{Backend, Proxy};
use idg_imaging::{dirty_image, Image};
use idg_wproj::gridder::{wpg_grid, WKernelCache, WpgSample};
use std::time::Instant;

fn main() {
    let obs = Observation::builder()
        .stations(8)
        .timesteps(64)
        .channels(4, 150e6, 2e6)
        .grid_size(256)
        .subgrid_size(24)
        .kernel_size(9)
        .aterm_interval(64)
        .image_size(0.05)
        .build()
        .expect("valid observation");
    let sky = SkyModel::single_center(2.0);
    let layout = Layout::uniform(obs.nr_stations, 1200.0, 31);
    let ds = Dataset::simulate(obs.clone(), &layout, sky, &IdentityATerm);

    // ---- IDG ----
    let proxy = Proxy::new(Backend::CpuOptimized, obs.clone()).expect("proxy");
    let plan = proxy.plan(&ds.uvw).expect("plan");
    let t0 = Instant::now();
    let (grid, report) = proxy
        .grid(&plan, &ds.uvw, &ds.visibilities, &ds.aterms)
        .expect("IDG gridding");
    let idg_time = t0.elapsed().as_secs_f64();
    let idg_img = dirty_image(&grid, &obs, plan.nr_gridded_visibilities());
    let idg_peak = idg_img.peak();
    println!(
        "IDG:  {:.3} s ({:.2} MVis/s), peak {:.2} Jy at ({}, {}), no convolution kernels stored",
        idg_time,
        report.counts.visibilities as f64 / idg_time / 1e6,
        idg_peak.2,
        idg_peak.0,
        idg_peak.1
    );

    // ---- W-projection ----
    let nw = 16usize;
    let f_mid = 0.5 * (obs.frequencies[0] + obs.frequencies[obs.nr_channels() - 1]);
    let to_lambda = f_mid / SPEED_OF_LIGHT;
    let samples: Vec<WpgSample> = ds
        .uvw
        .iter()
        .zip(ds.visibilities.iter())
        .map(|(uvw, vis)| WpgSample {
            u: uvw.u as f64 * to_lambda,
            v: uvw.v as f64 * to_lambda,
            w: uvw.w as f64 * to_lambda,
            vis: *vis,
        })
        .collect();
    let w_max = samples.iter().map(|s| s.w.abs()).fold(0.0, f64::max);

    let t0 = Instant::now();
    let kernels = WKernelCache::build(nw, 8, (w_max / 8.0).max(1.0), w_max, obs.image_size);
    let kernel_time = t0.elapsed().as_secs_f64();

    let t0 = Instant::now();
    let mut wgrid = idg::Grid::<f32>::new(obs.grid_size);
    let skipped = wpg_grid(&mut wgrid, &samples, &kernels, obs.image_size);
    let wpg_time = t0.elapsed().as_secs_f64();

    // image the W-projection grid (plane 0)
    let mut plane: Vec<Cf32> = wgrid.plane(0).to_vec();
    ifftshift2d(&mut plane, obs.grid_size);
    let fft = Fft2d::<f32>::new(obs.grid_size);
    fft.process_grid(&mut plane, Direction::Inverse);
    fftshift2d(&mut plane, obs.grid_size);
    let mut wpg_img = Image::new(obs.grid_size);
    let norm = (obs.grid_size * obs.grid_size) as f32 / (samples.len() - skipped) as f32;
    for y in 0..obs.grid_size {
        for x in 0..obs.grid_size {
            *wpg_img.at_mut(y, x) = plane[y * obs.grid_size + x].re * norm;
        }
    }
    let wpg_peak = wpg_img.peak();
    println!(
        "WPG:  {:.3} s ({:.2} MVis/s) + {:.3} s kernel precompute, peak {:.2} at ({}, {}), \
         {} w-planes, {:.1} MB of kernels",
        wpg_time,
        samples.len() as f64 / wpg_time / 1e6,
        kernel_time,
        wpg_peak.2,
        wpg_peak.0,
        wpg_peak.1,
        kernels.nr_planes(),
        kernels.storage_bytes() as f64 / 1e6
    );

    // both localize the center source at the same pixel
    assert_eq!((idg_peak.0, idg_peak.1), (128, 128));
    assert_eq!((wpg_peak.0, wpg_peak.1), (128, 128));
    // both recover the flux scale (WPG's taper differs slightly)
    assert!((idg_peak.2 - 2.0).abs() < 0.2);
    assert!((wpg_peak.2 - 2.0).abs() < 0.5);
    println!("\nOK: both gridders localize and scale the source consistently;");
    println!("IDG needed no kernel precomputation or storage.");
}
