//! A-term correction — the feature IDG exists for.
//!
//! Simulates an observation through a drifting Gaussian primary beam
//! (a direction-dependent effect), then images it twice: once ignoring
//! the beam (identity A-terms) and once with IDG's image-domain A-term
//! correction. The corrected image recovers the true source flux where
//! the uncorrected one underestimates it — at *no* extra gridding cost,
//! the paper's key claim versus AW-projection.
//!
//! ```sh
//! cargo run --release --example aterm_correction
//! ```

use idg::telescope::{ATerms, Dataset, GaussianBeam, Layout, PointSource, SkyModel};
use idg::types::Observation;
use idg::{Backend, Proxy};
use idg_imaging::{beam_weight_image, dirty_image, Image};
use std::time::Instant;

fn main() {
    let obs = Observation::builder()
        .stations(8)
        .timesteps(64)
        .channels(4, 150e6, 2e6)
        .grid_size(256)
        .subgrid_size(16)
        .kernel_size(5)
        .aterm_interval(16)
        .image_size(0.05)
        .build()
        .expect("valid observation");

    // a source half-way out, where the beam attenuates noticeably
    let src = PointSource {
        l: 0.012,
        m: -0.008,
        flux: 2.0,
    };
    let sky = SkyModel { sources: vec![src] };
    let layout = Layout::uniform(obs.nr_stations, 1200.0, 21);
    let beam = GaussianBeam::new(&obs, 0.55, 23);
    let ds = Dataset::simulate(obs.clone(), &layout, sky, &beam);

    let proxy = Proxy::new(Backend::CpuOptimized, obs.clone()).expect("proxy");
    let plan = proxy.plan(&ds.uvw).expect("plan");
    let (ex, ey) = (
        Image::lm_to_pixel(&obs, src.l),
        Image::lm_to_pixel(&obs, src.m),
    );

    // imaging WITHOUT the correction: pretend the beam does not exist
    let identity = ATerms::identity(&obs);
    let t0 = Instant::now();
    let (grid_raw, _) = proxy
        .grid(&plan, &ds.uvw, &ds.visibilities, &identity)
        .expect("gridding");
    let t_raw = t0.elapsed();
    let img_raw = dirty_image(&grid_raw, &obs, plan.nr_gridded_visibilities());

    // imaging WITH the image-domain A-term correction (adjoint sandwich
    // in the gridder + the beam-weight flat-gain division in the image)
    let t0 = Instant::now();
    let (grid_cor, _) = proxy
        .grid(&plan, &ds.uvw, &ds.visibilities, &ds.aterms)
        .expect("gridding");
    let t_cor = t0.elapsed();
    let img_cor = dirty_image(&grid_cor, &obs, plan.nr_gridded_visibilities());
    let weight = beam_weight_image(&ds.aterms, &obs, 0.01);

    let raw_flux = img_raw.at(ey, ex);
    let cor_flux = img_cor.at(ey, ex) / weight.at(ey, ex);
    println!("source: {:.2} Jy at pixel ({ex}, {ey})", src.flux);
    println!("apparent flux without A-term correction: {raw_flux:.3} Jy");
    println!("apparent flux with    A-term correction: {cor_flux:.3} Jy");
    println!(
        "gridding time: {:.3} s uncorrected vs {:.3} s corrected ({:+.1} % — \"negligible additional cost\")",
        t_raw.as_secs_f64(),
        t_cor.as_secs_f64(),
        100.0 * (t_cor.as_secs_f64() / t_raw.as_secs_f64() - 1.0)
    );

    assert!(
        cor_flux > raw_flux,
        "the correction must recover flux the beam suppressed"
    );
    assert!((cor_flux - src.flux as f32).abs() < 0.25 * src.flux as f32);
    println!("\nOK: image-domain A-term correction recovered the attenuated source.");
}
