#!/usr/bin/env bash
# Panic audit: fail when a library crate gains new unwrap()/expect()/panic!
# call sites. Counts are per non-test source file (trailing #[cfg(test)]
# modules are stripped) and compared against tools/panic-allowlist.txt.
#
#   tools/panic_audit.sh            # audit (CI mode; non-zero on new sites)
#   tools/panic_audit.sh --update   # regenerate the allowlist
#
# The allowlist is a ratchet: shrink it as call sites are converted to
# typed IdgError returns; never grow it to admit a new one.
set -euo pipefail
cd "$(dirname "$0")/.."

ALLOWLIST=tools/panic-allowlist.txt
current=$(mktemp)
trap 'rm -f "$current"' EXIT

# Library sources only: crates/*/src plus the root package src/ — the
# bench harness, tests/, benches/ and examples/ are exempt.
find crates -path crates/bench -prune -o -type f -name '*.rs' -path '*/src/*' -print |
  { cat; [ -d src ] && find src -type f -name '*.rs'; } | sort |
  while read -r f; do
    n=$(awk '/^#\[cfg\(test\)\]/ { exit } /^[[:space:]]*\/\// { next } { print }' "$f" |
      grep -cE '\.unwrap\(\)|\.expect\(|panic!' || true)
    [ "$n" -gt 0 ] && printf '%s %s\n' "$n" "$f"
  done > "$current" || true

if [ "${1:-}" = "--update" ]; then
  cp "$current" "$ALLOWLIST"
  echo "panic audit: allowlist regenerated ($(wc -l < "$ALLOWLIST") files)"
  exit 0
fi

status=0
while read -r n f; do
  allowed=$(awk -v f="$f" '$2 == f { print $1 }' "$ALLOWLIST")
  allowed=${allowed:-0}
  if [ "$n" -gt "$allowed" ]; then
    echo "panic audit: $f has $n unwrap()/expect()/panic! sites (allowlisted: $allowed)" >&2
    echo "  convert the new site to a typed IdgError return (see DESIGN.md §7)" >&2
    status=1
  fi
done < "$current"

if [ "$status" -eq 0 ]; then
  echo "panic audit: ok ($(wc -l < "$current") files within allowlist)"
fi
exit $status
