//! Minimal work-alike of the `rayon` API surface used by this workspace.
//!
//! The build environment has no network access and no vendored registry,
//! so the real `rayon` crate cannot be fetched. This shim re-implements
//! exactly the combinators the workspace uses — `par_iter`,
//! `par_iter_mut`, `par_chunks[_exact][_mut]`, `into_par_iter`, `zip`,
//! `enumerate`, `map`, `map_init`, `for_each`, `for_each_init`,
//! `collect` and `current_num_threads` — on top of `std::thread::scope`.
//!
//! Work distribution is a shared `Mutex`-guarded iterator that worker
//! threads pull from; this is a fair dynamic schedule (not work
//! stealing), which is indistinguishable from rayon for the coarse
//! per-subgrid / per-row / per-plane items this workspace parallelizes
//! over. `map`-style results are re-ordered by source index before
//! `collect`, so output ordering matches the sequential semantics rayon
//! guarantees for indexed parallel iterators.

use std::sync::Mutex;

/// Everything call sites import via `use rayon::prelude::*`.
pub mod prelude {
    pub use crate::{IntoParallelIterator, ParallelSlice, ParallelSliceMut};
}

/// Number of worker threads used by parallel drivers.
pub fn current_num_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// A "parallel" iterator: a lazily-staged std iterator plus the parallel
/// drivers (`for_each*`, `map*`, `collect`).
pub struct ParIter<I> {
    iter: I,
}

/// A mapped parallel iterator (`par_iter().map(f)`), kept unfused so the
/// mapping closure runs outside the queue lock, in parallel.
pub struct ParMap<I, F> {
    iter: I,
    f: F,
}

/// A mapped parallel iterator with per-thread state
/// (`par_iter().map_init(init, f)`).
pub struct ParMapInit<I, INIT, F> {
    iter: I,
    init: INIT,
    f: F,
}

impl<I> ParIter<I>
where
    I: Iterator + Send,
    I::Item: Send,
{
    /// Pair up with a second parallel iterator.
    pub fn zip<J>(self, other: ParIter<J>) -> ParIter<std::iter::Zip<I, J>>
    where
        J: Iterator + Send,
        J::Item: Send,
    {
        ParIter {
            iter: self.iter.zip(other.iter),
        }
    }

    /// Index each item.
    pub fn enumerate(self) -> ParIter<std::iter::Enumerate<I>> {
        ParIter {
            iter: self.iter.enumerate(),
        }
    }

    /// Map each item (parallel at `collect`/`for_each` time).
    pub fn map<R, F>(self, f: F) -> ParMap<I, F>
    where
        R: Send,
        F: Fn(I::Item) -> R + Sync,
    {
        ParMap { iter: self.iter, f }
    }

    /// Map with per-thread scratch state created by `init`.
    pub fn map_init<T, R, INIT, F>(self, init: INIT, f: F) -> ParMapInit<I, INIT, F>
    where
        R: Send,
        INIT: Fn() -> T + Sync,
        F: Fn(&mut T, I::Item) -> R + Sync,
    {
        ParMapInit {
            iter: self.iter,
            init,
            f,
        }
    }

    /// Consume every item in parallel.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(I::Item) + Sync,
    {
        drive(self.iter, &|| (), &|_, item| f(item));
    }

    /// Consume every item in parallel with per-thread scratch state.
    pub fn for_each_init<T, INIT, F>(self, init: INIT, f: F)
    where
        INIT: Fn() -> T + Sync,
        F: Fn(&mut T, I::Item) + Sync,
    {
        drive(self.iter, &init, &|state, item| f(state, item));
    }

    /// Collect items, preserving source order.
    pub fn collect<C>(self) -> C
    where
        C: FromIterator<I::Item>,
    {
        // No mapping stage: nothing to parallelize, pull sequentially.
        self.iter.collect()
    }
}

impl<I, R, F> ParMap<I, F>
where
    I: Iterator + Send,
    I::Item: Send,
    R: Send,
    F: Fn(I::Item) -> R + Sync,
{
    /// Apply the map in parallel and collect in source order.
    pub fn collect<C>(self) -> C
    where
        C: FromIterator<R>,
    {
        let f = &self.f;
        drive_ordered(self.iter, &|| (), &|_, item| f(item))
            .into_iter()
            .collect()
    }

    /// Apply the map and consume results in parallel.
    pub fn for_each<G>(self, g: G)
    where
        G: Fn(R) + Sync,
    {
        let f = &self.f;
        drive(self.iter, &|| (), &|_, item| g(f(item)));
    }
}

impl<I, T, R, INIT, F> ParMapInit<I, INIT, F>
where
    I: Iterator + Send,
    I::Item: Send,
    R: Send,
    INIT: Fn() -> T + Sync,
    F: Fn(&mut T, I::Item) -> R + Sync,
{
    /// Apply the map in parallel (per-thread state) and collect in
    /// source order.
    pub fn collect<C>(self) -> C
    where
        C: FromIterator<R>,
    {
        let f = &self.f;
        drive_ordered(self.iter, &self.init, &|state, item| f(state, item))
            .into_iter()
            .collect()
    }
}

/// Pull items from `iter` on `current_num_threads()` scoped workers and
/// apply `f` with a per-thread state from `init`.
fn drive<I, T, INIT, F>(iter: I, init: &INIT, f: &F)
where
    I: Iterator + Send,
    I::Item: Send,
    INIT: Fn() -> T + Sync,
    F: Fn(&mut T, I::Item) + Sync,
{
    let nthreads = current_num_threads();
    if nthreads <= 1 {
        let mut state = init();
        for item in iter {
            f(&mut state, item);
        }
        return;
    }
    let queue = Mutex::new(iter);
    std::thread::scope(|scope| {
        for _ in 0..nthreads {
            scope.spawn(|| {
                let mut state = init();
                loop {
                    let item = queue.lock().unwrap().next();
                    match item {
                        Some(x) => f(&mut state, x),
                        None => break,
                    }
                }
            });
        }
    });
}

/// As [`drive`], but collects `f`'s results tagged with their source
/// index and returns them in source order.
fn drive_ordered<I, T, R, INIT, F>(iter: I, init: &INIT, f: &F) -> Vec<R>
where
    I: Iterator + Send,
    I::Item: Send,
    R: Send,
    INIT: Fn() -> T + Sync,
    F: Fn(&mut T, I::Item) -> R + Sync,
{
    let nthreads = current_num_threads();
    if nthreads <= 1 {
        let mut state = init();
        return iter.map(|x| f(&mut state, x)).collect();
    }
    let queue = Mutex::new(iter.enumerate());
    let sink: Mutex<Vec<(usize, R)>> = Mutex::new(Vec::new());
    std::thread::scope(|scope| {
        for _ in 0..nthreads {
            scope.spawn(|| {
                let mut state = init();
                let mut local: Vec<(usize, R)> = Vec::new();
                loop {
                    let item = queue.lock().unwrap().next();
                    match item {
                        Some((i, x)) => local.push((i, f(&mut state, x))),
                        None => break,
                    }
                }
                sink.lock().unwrap().append(&mut local);
            });
        }
    });
    let mut tagged = sink.into_inner().unwrap();
    tagged.sort_by_key(|(i, _)| *i);
    tagged.into_iter().map(|(_, r)| r).collect()
}

/// `par_iter` / `par_chunks` on shared slices.
pub trait ParallelSlice<T: Sync> {
    fn par_iter(&self) -> ParIter<std::slice::Iter<'_, T>>;
    fn par_chunks(&self, chunk_size: usize) -> ParIter<std::slice::Chunks<'_, T>>;
}

impl<T: Sync> ParallelSlice<T> for [T] {
    fn par_iter(&self) -> ParIter<std::slice::Iter<'_, T>> {
        ParIter { iter: self.iter() }
    }

    fn par_chunks(&self, chunk_size: usize) -> ParIter<std::slice::Chunks<'_, T>> {
        ParIter {
            iter: self.chunks(chunk_size),
        }
    }
}

/// `par_iter_mut` / `par_chunks_mut` / `par_chunks_exact_mut` on
/// mutable slices.
pub trait ParallelSliceMut<T: Send> {
    fn par_iter_mut(&mut self) -> ParIter<std::slice::IterMut<'_, T>>;
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParIter<std::slice::ChunksMut<'_, T>>;
    fn par_chunks_exact_mut(
        &mut self,
        chunk_size: usize,
    ) -> ParIter<std::slice::ChunksExactMut<'_, T>>;
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn par_iter_mut(&mut self) -> ParIter<std::slice::IterMut<'_, T>> {
        ParIter {
            iter: self.iter_mut(),
        }
    }

    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParIter<std::slice::ChunksMut<'_, T>> {
        ParIter {
            iter: self.chunks_mut(chunk_size),
        }
    }

    fn par_chunks_exact_mut(
        &mut self,
        chunk_size: usize,
    ) -> ParIter<std::slice::ChunksExactMut<'_, T>> {
        ParIter {
            iter: self.chunks_exact_mut(chunk_size),
        }
    }
}

/// `into_par_iter` on any owned iterable (ranges, vectors, …).
pub trait IntoParallelIterator {
    type Item: Send;
    type Iter: Iterator<Item = Self::Item> + Send;
    fn into_par_iter(self) -> ParIter<Self::Iter>;
}

impl<C> IntoParallelIterator for C
where
    C: IntoIterator,
    C::Item: Send,
    C::IntoIter: Send,
{
    type Item = C::Item;
    type Iter = C::IntoIter;

    fn into_par_iter(self) -> ParIter<Self::Iter> {
        ParIter {
            iter: self.into_iter(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    #[test]
    fn map_collect_preserves_order() {
        let v: Vec<usize> = (0..1000usize).into_par_iter().map(|i| i * 2).collect();
        assert_eq!(v, (0..1000).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn zip_for_each_init_covers_every_pair() {
        let items: Vec<usize> = (0..64).collect();
        let mut out = vec![0usize; 64];
        items
            .par_iter()
            .zip(out.as_mut_slice().par_chunks_exact_mut(1))
            .for_each_init(
                || 0usize,
                |state, (i, slot)| {
                    *state += 1;
                    slot[0] = i * i;
                },
            );
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, i * i);
        }
    }

    #[test]
    fn par_chunks_mut_enumerate() {
        let mut data = [0u32; 40];
        data.par_chunks_mut(10).enumerate().for_each(|(i, chunk)| {
            for c in chunk {
                *c = i as u32;
            }
        });
        assert_eq!(data[0], 0);
        assert_eq!(data[15], 1);
        assert_eq!(data[39], 3);
    }

    #[test]
    fn map_init_collect_is_ordered() {
        let cols: Vec<Vec<usize>> = (0..32usize)
            .into_par_iter()
            .map_init(Vec::new, |scratch: &mut Vec<usize>, x| {
                scratch.push(x);
                vec![x, x + 1]
            })
            .collect();
        for (i, c) in cols.iter().enumerate() {
            assert_eq!(c, &vec![i, i + 1]);
        }
    }

    #[test]
    fn current_num_threads_is_positive() {
        assert!(current_num_threads() >= 1);
    }
}
