//! Value-generation strategies.

use crate::test_runner::TestRng;
use std::ops::Range;

/// A way to produce random values of `Self::Value`.
///
/// Unlike upstream proptest there is no shrinking: `generate` samples a
/// value directly. Failing inputs are reported by the `proptest!`
/// harness instead of being minimized.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { source: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
#[derive(Clone, Debug)]
pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.source.generate(rng))
    }
}

/// A constant strategy (upstream `Just`).
#[derive(Clone, Debug)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty strategy range");
        self.start + (self.end - self.start) * rng.unit_f64()
    }
}

impl Strategy for Range<f32> {
    type Value = f32;

    fn generate(&self, rng: &mut TestRng) -> f32 {
        assert!(self.start < self.end, "empty strategy range");
        self.start + (self.end - self.start) * rng.unit_f64() as f32
    }
}

macro_rules! int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = self.end.wrapping_sub(self.start) as u64;
                self.start.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
    )*};
}
int_strategy!(usize, u64, u32, u16, u8, i64, i32, i16, i8);

macro_rules! tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )*};
}
tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
}
