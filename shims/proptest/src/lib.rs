//! Minimal work-alike of the `proptest` API surface used by this
//! workspace.
//!
//! Offline stand-in for the real crate. It implements the subset the
//! test suites rely on:
//!
//! - the `proptest! { ... }` macro (with optional
//!   `#![proptest_config(...)]`), running each property over `cases`
//!   deterministically-seeded random inputs,
//! - `prop_assert!`, `prop_assert_eq!`, `prop_assume!`,
//! - range strategies for floats/ints, tuple strategies, `prop_map`,
//!   and `proptest::array::uniform8`.
//!
//! Differences from upstream, by design: inputs are sampled from a
//! fixed per-test seed (fully reproducible, no persistence files) and
//! failing cases are reported without shrinking — the failing input is
//! printed instead.

pub mod strategy;
pub mod test_runner;

/// `use proptest::prelude::*;`
pub mod prelude {
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, proptest};
}

/// Array strategies (`proptest::array::uniform8`).
pub mod array {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy producing `[S::Value; 8]` with i.i.d. elements.
    #[derive(Clone, Debug)]
    pub struct Uniform8<S>(S);

    pub fn uniform8<S: Strategy>(element: S) -> Uniform8<S> {
        Uniform8(element)
    }

    impl<S: Strategy> Strategy for Uniform8<S> {
        type Value = [S::Value; 8];

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            std::array::from_fn(|_| self.0.generate(rng))
        }
    }
}

/// The property-test entry macro.
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]
///     #[test]
///     fn my_prop(x in -1.0..1.0f64, n in 0usize..10) { ... }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    (($cfg:expr) $($(#[$meta:meta])* fn $name:ident(
        $($arg:ident in $strat:expr),* $(,)?
    ) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                let mut rng =
                    $crate::test_runner::TestRng::deterministic(stringify!($name));
                let mut accepted: u32 = 0;
                let mut attempts: u32 = 0;
                let max_attempts = config.cases.saturating_mul(20).max(100);
                while accepted < config.cases {
                    attempts += 1;
                    assert!(
                        attempts <= max_attempts,
                        "proptest '{}': too many prop_assume! rejections \
                         ({} attempts for {} cases)",
                        stringify!($name), attempts, config.cases,
                    );
                    $(
                        let $arg =
                            $crate::strategy::Strategy::generate(&$strat, &mut rng);
                    )*
                    let outcome: ::core::result::Result<
                        (),
                        $crate::test_runner::TestCaseError,
                    > = (|| {
                        { $body }
                        ::core::result::Result::Ok(())
                    })();
                    match outcome {
                        ::core::result::Result::Ok(()) => accepted += 1,
                        ::core::result::Result::Err(
                            $crate::test_runner::TestCaseError::Reject,
                        ) => continue,
                        ::core::result::Result::Err(
                            $crate::test_runner::TestCaseError::Fail(msg),
                        ) => panic!(
                            "proptest '{}' failed at case {}: {}",
                            stringify!($name), accepted, msg,
                        ),
                    }
                }
            }
        )*
    };
}

/// Fallible assertion usable inside `proptest!` bodies.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        // Bind first: negating `$cond` textually would trip
        // `clippy::neg_cmp_op_on_partial_ord` at every float call site.
        let ok: bool = $cond;
        if !ok {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::Fail(format!($($fmt)+)),
            );
        }
    };
}

/// Fallible equality assertion usable inside `proptest!` bodies.
#[macro_export]
macro_rules! prop_assert_eq {
    ($lhs:expr, $rhs:expr $(,)?) => {
        match (&$lhs, &$rhs) {
            (l, r) => {
                if !(*l == *r) {
                    return ::core::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                        format!("assertion failed: `{:?}` == `{:?}`", l, r,),
                    ));
                }
            }
        }
    };
}

/// Reject (skip) the current case when its inputs are unsuitable.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        // Bound first for the same clippy reason as `prop_assert!`.
        let suitable: bool = $cond;
        if !suitable {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

        #[test]
        fn ranges_stay_in_bounds(x in -3.0..7.0f64, n in 2usize..9) {
            prop_assert!((-3.0..7.0).contains(&x));
            prop_assert!((2..9).contains(&n));
        }

        #[test]
        fn assume_rejects_without_failing(x in 0.0..1.0f64) {
            prop_assume!(x > 0.001);
            prop_assert!(x > 0.0);
        }

        #[test]
        fn prop_map_applies(y in (0usize..10).prop_map(|v| v * 3)) {
            prop_assert_eq!(y % 3, 0);
            prop_assert!(y < 30);
        }

        #[test]
        fn tuples_and_arrays(
            pair in (0.0..1.0f64, 1.0..2.0f64),
            v in crate::array::uniform8(-1.0..1.0f64),
        ) {
            let (a, b) = pair;
            prop_assert!(a < b);
            prop_assert!(v.iter().all(|x| (-1.0..1.0).contains(x)));
        }
    }

    #[test]
    #[should_panic(expected = "failed at case")]
    fn failing_property_panics() {
        proptest! {
            fn inner(x in 0.0..1.0f64) {
                prop_assert!(x < 0.0, "x was {x}");
            }
        }
        inner();
    }
}
