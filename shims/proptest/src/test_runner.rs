//! Test-runner types backing the `proptest!` macro expansion.

/// Per-block configuration (`#![proptest_config(...)]`).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of accepted cases each property must pass.
    pub cases: u32,
    /// Upstream shrink-iteration cap. This shim reports the failing
    /// inputs without shrinking, but the field keeps the standard
    /// `ProptestConfig { cases, ..default() }` idiom meaningful.
    pub max_shrink_iters: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Upstream defaults to 256 cases; 64 keeps the numerical
        // suites fast while still sweeping each property's input space.
        Self {
            cases: 64,
            max_shrink_iters: 1024,
        }
    }
}

/// Why a single case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!` rejected the inputs — resample, don't fail.
    Reject,
    /// `prop_assert!` failed with this message.
    Fail(String),
}

/// Deterministic generator feeding the strategies
/// (SplitMix64; seeded from the property's name).
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seed from a test name so each property gets a stable,
    /// reproducible input stream.
    pub fn deterministic(name: &str) -> Self {
        // FNV-1a over the name, mixed with a fixed offset
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        Self {
            state: h ^ 0x9E37_79B9_7F4A_7C15,
        }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform f64 in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}
