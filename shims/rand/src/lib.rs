//! Minimal work-alike of the `rand` API surface used by this workspace.
//!
//! Offline stand-in for the real crate: provides `rngs::StdRng`,
//! `SeedableRng::seed_from_u64` and the `RngExt` sampling methods
//! (`random`, `random_range`) the telescope simulators use. The
//! generator is xoshiro256++ seeded through SplitMix64 — deterministic
//! for a given seed, which is all the simulators rely on (they never
//! assume the exact stream of the upstream `StdRng`).

use std::ops::Range;

/// Core 64-bit generator interface.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction from seeds.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = splitmix64(&mut sm);
            }
            // all-zero state would be a fixed point of xoshiro
            if s == [0; 4] {
                s = [0x9E37_79B9_7F4A_7C15, 1, 2, 3];
            }
            Self { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Types samplable uniformly over their "standard" domain
/// (`[0, 1)` for floats, full range for integers).
pub trait StandardUniform: Sized {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardUniform for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 top bits → [0, 1) with full double precision
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardUniform for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl StandardUniform for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl StandardUniform for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl StandardUniform for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Types with uniform sampling over a half-open range. The blanket
/// `SampleRange` impl below is generic over this trait — exactly like
/// upstream rand — so type inference can unify the range's element type
/// with the call site's expected result type.
pub trait SampleUniform: Sized + PartialOrd {
    fn sample_range<R: RngCore + ?Sized>(start: Self, end: Self, rng: &mut R) -> Self;
}

macro_rules! float_uniform {
    ($t:ty) => {
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(start: Self, end: Self, rng: &mut R) -> Self {
                let u = <$t as StandardUniform>::sample(rng);
                start + (end - start) * u
            }
        }
    };
}
float_uniform!(f32);
float_uniform!(f64);

macro_rules! int_uniform {
    ($t:ty) => {
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(start: Self, end: Self, rng: &mut R) -> Self {
                let span = end.wrapping_sub(start) as u64;
                // modulo bias is ≤ span/2⁶⁴ — irrelevant for the
                // simulation seeds this shim feeds
                start.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
    };
}
int_uniform!(usize);
int_uniform!(u64);
int_uniform!(u32);
int_uniform!(i64);
int_uniform!(i32);

/// Ranges samplable uniformly.
pub trait SampleRange<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "empty range");
        T::sample_range(self.start, self.end, rng)
    }
}

/// The sampling extension methods (`rand 0.10` naming).
pub trait RngExt: RngCore {
    fn random<T: StandardUniform>(&mut self) -> T {
        T::sample(self)
    }

    fn random_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample(self)
    }
}

impl<R: RngCore + ?Sized> RngExt for R {}

/// Alias kept for call sites written against the pre-0.9 trait name.
pub use RngExt as Rng;

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{RngExt, SeedableRng};

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.random::<f64>(), b.random::<f64>());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let xs: Vec<f64> = (0..8).map(|_| a.random()).collect();
        let ys: Vec<f64> = (0..8).map(|_| b.random()).collect();
        assert_ne!(xs, ys);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: f64 = rng.random_range(-0.3..0.3);
            assert!((-0.3..0.3).contains(&x));
            let y: f32 = rng.random_range(f32::EPSILON..1.0);
            assert!((f32::EPSILON..1.0).contains(&y));
            let n: usize = rng.random_range(3usize..17);
            assert!((3..17).contains(&n));
        }
    }

    #[test]
    fn unit_floats_cover_the_interval() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut lo = false;
        let mut hi = false;
        for _ in 0..10_000 {
            let x: f64 = rng.random();
            assert!((0.0..1.0).contains(&x));
            lo |= x < 0.1;
            hi |= x > 0.9;
        }
        assert!(lo && hi, "samples should spread over [0, 1)");
    }
}
