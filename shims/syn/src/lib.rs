//! In-repo stand-in for the `syn` parsing surface used by `idg-lint`.
//!
//! The build environment is fully offline, so upstream `syn` is not
//! available. This shim reproduces the layer of it that the workspace
//! static-analysis pass actually consumes: [`parse_file`] lexes a Rust
//! source file into a **spanned, comment-free, delimiter-matched token
//! tree** (the `proc-macro2` token model that upstream `syn` is built
//! on). Upstream's typed item AST is *not* reproduced — `idg-lint`
//! performs its own lightweight item recognition over the token tree,
//! which is all the workspace invariants need.
//!
//! What the lexer understands, because getting these wrong would produce
//! phantom diagnostics:
//!
//! * line comments (`//`, `///`, `//!`) and arbitrarily **nested** block
//!   comments (`/* /* */ */`), all dropped;
//! * string, raw-string (`r#"…"#`, any number of `#`s), byte-string,
//!   C-string, char and byte literals, including escapes — so panic
//!   keywords *inside strings* are never tokens;
//! * the char-literal vs. lifetime ambiguity (`'a'` vs. `'a`);
//! * numeric literals with underscores, radix prefixes, exponents and
//!   type suffixes, classified int vs. float;
//! * raw identifiers (`r#fn`).
//!
//! Every token carries a [`Span`] with 1-based line and 0-based UTF-8
//! column (`LineColumn`, matching upstream `proc-macro2`).

#![forbid(unsafe_code)]

/// A line/column position in the source file.
///
/// `line` is 1-based; `column` is a 0-based count of `char`s from the
/// start of the line (the upstream `proc_macro2::LineColumn` convention).
#[derive(Copy, Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct LineColumn {
    /// 1-based source line.
    pub line: usize,
    /// 0-based UTF-8 character column.
    pub column: usize,
}

/// Source region of a token: start and end positions.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct Span {
    start: LineColumn,
    end: LineColumn,
}

impl Span {
    /// Position of the token's first character.
    pub fn start(&self) -> LineColumn {
        self.start
    }

    /// Position one past the token's last character.
    pub fn end(&self) -> LineColumn {
        self.end
    }
}

/// The delimiter kind of a [`Group`].
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Delimiter {
    /// `( … )`
    Parenthesis,
    /// `{ … }`
    Brace,
    /// `[ … ]`
    Bracket,
}

/// A delimited token sequence: `( … )`, `{ … }` or `[ … ]`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Group {
    /// Which delimiter pair encloses the group.
    pub delimiter: Delimiter,
    /// The tokens between the delimiters.
    pub tokens: Vec<TokenTree>,
    /// Span of the opening delimiter character.
    pub span_open: Span,
    /// Span of the closing delimiter character.
    pub span_close: Span,
}

/// An identifier or keyword (keywords are not distinguished here;
/// `idg-lint` matches on the text).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Ident {
    /// The identifier text (raw identifiers keep their `r#` prefix).
    pub text: String,
    /// Source location.
    pub span: Span,
}

/// A single punctuation character.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Punct {
    /// The character.
    pub ch: char,
    /// `true` when the next source character is also punctuation with no
    /// whitespace between — i.e. this punct may be the first half of a
    /// multi-character operator such as `==`, `->` or `::`.
    pub joint: bool,
    /// Source location.
    pub span: Span,
}

/// Classification of a [`Literal`].
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum LitKind {
    /// Integer literal (any radix, possibly suffixed).
    Int,
    /// Floating-point literal (decimal point, exponent, or f32/f64 suffix).
    Float,
    /// String-ish literal (`"…"`, `r"…"`, `b"…"`, `c"…"` and raw forms).
    Str,
    /// Char or byte literal (`'x'`, `b'x'`).
    Char,
}

/// A literal token. The text is kept verbatim (suffix included).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Literal {
    /// Verbatim literal text.
    pub text: String,
    /// What kind of literal this is.
    pub kind: LitKind,
    /// Source location.
    pub span: Span,
}

/// One node of the token tree.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TokenTree {
    /// A delimited subtree.
    Group(Group),
    /// An identifier or keyword.
    Ident(Ident),
    /// A punctuation character.
    Punct(Punct),
    /// A literal.
    Literal(Literal),
}

impl TokenTree {
    /// The span of this token (a group answers with its opening
    /// delimiter's span).
    pub fn span(&self) -> Span {
        match self {
            TokenTree::Group(g) => g.span_open,
            TokenTree::Ident(i) => i.span,
            TokenTree::Punct(p) => p.span,
            TokenTree::Literal(l) => l.span,
        }
    }
}

/// A parsed source file: the top-level token stream.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct File {
    /// Top-level tokens (items appear as flat token runs with their
    /// bodies as [`Group`]s).
    pub tokens: Vec<TokenTree>,
}

/// A lex/parse failure with the position it occurred at.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Error {
    /// Where the problem was detected.
    pub span: LineColumn,
    /// Human-readable description.
    pub message: String,
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}: {}",
            self.span.line,
            self.span.column + 1,
            self.message
        )
    }
}

impl std::error::Error for Error {}

/// Parse a Rust source file into its token tree.
pub fn parse_file(src: &str) -> Result<File, Error> {
    let mut lexer = Lexer::new(src);
    let tokens = lexer.lex_stream(None)?;
    Ok(File { tokens })
}

// ---------------------------------------------------------------------------
// Lexer
// ---------------------------------------------------------------------------

struct Lexer {
    chars: Vec<char>,
    pos: usize,
    line: usize,
    column: usize,
    /// Span of the most recent closing delimiter, written by the
    /// recursive `lex_stream` just before returning to its caller.
    last_close_span: Span,
}

impl Lexer {
    fn new(src: &str) -> Self {
        let zero = LineColumn { line: 1, column: 0 };
        Lexer {
            chars: src.chars().collect(),
            pos: 0,
            line: 1,
            column: 0,
            last_close_span: Span {
                start: zero,
                end: zero,
            },
        }
    }

    fn here(&self) -> LineColumn {
        LineColumn {
            line: self.line,
            column: self.column,
        }
    }

    fn peek(&self) -> Option<char> {
        self.chars.get(self.pos).copied()
    }

    fn peek_at(&self, offset: usize) -> Option<char> {
        self.chars.get(self.pos + offset).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.chars.get(self.pos).copied()?;
        self.pos += 1;
        if c == '\n' {
            self.line += 1;
            self.column = 0;
        } else {
            self.column += 1;
        }
        Some(c)
    }

    fn error(&self, at: LineColumn, message: &str) -> Error {
        Error {
            span: at,
            message: message.to_string(),
        }
    }

    /// Lex tokens until EOF (closing == None) or until the matching
    /// closing delimiter (closing == Some(ch)), which is consumed.
    /// Returns the tokens; the caller records the close span via
    /// `self.last_close_span`.
    fn lex_stream(&mut self, closing: Option<char>) -> Result<Vec<TokenTree>, Error> {
        let mut out = Vec::new();
        loop {
            self.skip_trivia()?;
            let start = self.here();
            let Some(c) = self.peek() else {
                return match closing {
                    None => Ok(out),
                    Some(cl) => {
                        Err(self.error(start, &format!("unexpected end of file, expected `{cl}`")))
                    }
                };
            };
            match c {
                '(' | '{' | '[' => {
                    let (close, delim) = match c {
                        '(' => (')', Delimiter::Parenthesis),
                        '{' => ('}', Delimiter::Brace),
                        _ => (']', Delimiter::Bracket),
                    };
                    self.bump();
                    let span_open = Span {
                        start,
                        end: self.here(),
                    };
                    let tokens = self.lex_stream(Some(close))?;
                    let span_close = self.last_close_span;
                    out.push(TokenTree::Group(Group {
                        delimiter: delim,
                        tokens,
                        span_open,
                        span_close,
                    }));
                }
                ')' | '}' | ']' => {
                    self.bump();
                    let span = Span {
                        start,
                        end: self.here(),
                    };
                    return match closing {
                        Some(cl) if cl == c => {
                            self.last_close_span = span;
                            Ok(out)
                        }
                        _ => Err(self.error(start, &format!("unbalanced `{c}`"))),
                    };
                }
                '"' => out.push(self.lex_string(start, "string literal")?),
                '\'' => out.push(self.lex_quote(start)?),
                'r' if matches!(self.peek_at(1), Some('"' | '#')) && self.is_raw_string(0) => {
                    out.push(self.lex_raw_string(start)?);
                }
                'b' | 'c'
                    if matches!(self.peek_at(1), Some('"'))
                        || (c == 'b' && self.peek_at(1) == Some('\''))
                        || (self.peek_at(1) == Some('r') && self.is_raw_string(1)) =>
                {
                    out.push(self.lex_bytes_or_cstr(start)?);
                }
                c if c.is_ascii_digit() => out.push(self.lex_number(start)),
                c if is_ident_start(c) => out.push(self.lex_ident(start)),
                _ => {
                    self.bump();
                    let joint = self
                        .peek()
                        .map(|n| {
                            is_punct_char(n) && !matches!(n, '(' | ')' | '{' | '}' | '[' | ']')
                        })
                        .unwrap_or(false);
                    out.push(TokenTree::Punct(Punct {
                        ch: c,
                        joint,
                        span: Span {
                            start,
                            end: self.here(),
                        },
                    }));
                }
            }
        }
    }

    /// Whether position `pos + offset` starts a raw (byte/C) string body:
    /// `r` followed by zero or more `#` then `"`.
    fn is_raw_string(&self, offset: usize) -> bool {
        debug_assert_eq!(self.peek_at(offset), Some('r'));
        let mut i = offset + 1;
        while self.peek_at(i) == Some('#') {
            i += 1;
        }
        self.peek_at(i) == Some('"')
    }

    fn skip_trivia(&mut self) -> Result<(), Error> {
        loop {
            match self.peek() {
                Some(c) if c.is_whitespace() => {
                    self.bump();
                }
                Some('/') if self.peek_at(1) == Some('/') => {
                    while let Some(c) = self.peek() {
                        if c == '\n' {
                            break;
                        }
                        self.bump();
                    }
                }
                Some('/') if self.peek_at(1) == Some('*') => {
                    let start = self.here();
                    self.bump();
                    self.bump();
                    let mut depth = 1usize;
                    loop {
                        match (self.peek(), self.peek_at(1)) {
                            (Some('/'), Some('*')) => {
                                self.bump();
                                self.bump();
                                depth += 1;
                            }
                            (Some('*'), Some('/')) => {
                                self.bump();
                                self.bump();
                                depth -= 1;
                                if depth == 0 {
                                    break;
                                }
                            }
                            (Some(_), _) => {
                                self.bump();
                            }
                            (None, _) => {
                                return Err(self.error(start, "unterminated block comment"));
                            }
                        }
                    }
                }
                _ => return Ok(()),
            }
        }
    }

    fn lex_ident(&mut self, start: LineColumn) -> TokenTree {
        let mut text = String::new();
        // raw identifier prefix r# (reached via is_ident_start('r'))
        if self.peek() == Some('r') && self.peek_at(1) == Some('#') {
            let after = self.peek_at(2);
            if after.map(is_ident_start).unwrap_or(false) {
                text.push('r');
                text.push('#');
                self.bump();
                self.bump();
            }
        }
        while let Some(c) = self.peek() {
            if is_ident_continue(c) {
                text.push(c);
                self.bump();
            } else {
                break;
            }
        }
        TokenTree::Ident(Ident {
            text,
            span: Span {
                start,
                end: self.here(),
            },
        })
    }

    fn lex_number(&mut self, start: LineColumn) -> TokenTree {
        let mut text = String::new();
        let mut is_float = false;
        let radix_prefixed = self.peek() == Some('0')
            && matches!(self.peek_at(1), Some('x' | 'X' | 'o' | 'O' | 'b' | 'B'));
        // digits, underscores, radix prefix and suffix letters
        while let Some(c) = self.peek() {
            if is_ident_continue(c) {
                // exponent with a sign: 1e+5 / 2.5E-3 (decimal only)
                if !radix_prefixed
                    && matches!(c, 'e' | 'E')
                    && matches!(self.peek_at(1), Some('+' | '-'))
                    && self.peek_at(2).map(|d| d.is_ascii_digit()).unwrap_or(false)
                {
                    is_float = true;
                    text.push(c);
                    self.bump();
                    text.push(self.peek().unwrap_or('+'));
                    self.bump();
                    continue;
                }
                if !radix_prefixed && matches!(c, 'e' | 'E') {
                    is_float = true;
                }
                text.push(c);
                self.bump();
            } else if c == '.' {
                // `1.5` and trailing `1.` are float continuations;
                // `1..2` (range) and `1.foo` (field/method) are not.
                let next = self.peek_at(1);
                let continues = match next {
                    Some(d) if d.is_ascii_digit() => true,
                    Some('.') => false,
                    Some(n) if is_ident_start(n) => false,
                    _ => true, // `1.` at end of expression
                };
                if continues && !is_float && !radix_prefixed {
                    is_float = true;
                    text.push('.');
                    self.bump();
                } else {
                    break;
                }
            } else {
                break;
            }
        }
        if text.ends_with("f32") || text.ends_with("f64") {
            is_float = true;
        }
        TokenTree::Literal(Literal {
            text,
            kind: if is_float {
                LitKind::Float
            } else {
                LitKind::Int
            },
            span: Span {
                start,
                end: self.here(),
            },
        })
    }

    fn lex_string(&mut self, start: LineColumn, what: &str) -> Result<TokenTree, Error> {
        let mut text = String::new();
        text.push(self.bump().unwrap_or('"')); // opening quote
        loop {
            match self.peek() {
                Some('\\') => {
                    text.push(self.bump().unwrap_or('\\'));
                    if let Some(esc) = self.bump() {
                        text.push(esc);
                    }
                }
                Some('"') => {
                    text.push(self.bump().unwrap_or('"'));
                    break;
                }
                Some(c) => {
                    text.push(c);
                    self.bump();
                }
                None => return Err(self.error(start, &format!("unterminated {what}"))),
            }
        }
        self.eat_suffix(&mut text);
        Ok(TokenTree::Literal(Literal {
            text,
            kind: LitKind::Str,
            span: Span {
                start,
                end: self.here(),
            },
        }))
    }

    fn lex_raw_string(&mut self, start: LineColumn) -> Result<TokenTree, Error> {
        let mut text = String::new();
        text.push(self.bump().unwrap_or('r')); // `r`
        let mut hashes = 0usize;
        while self.peek() == Some('#') {
            text.push(self.bump().unwrap_or('#'));
            hashes += 1;
        }
        if self.peek() != Some('"') {
            return Err(self.error(start, "malformed raw string"));
        }
        text.push(self.bump().unwrap_or('"'));
        // scan to `"` followed by `hashes` hash characters
        loop {
            match self.peek() {
                Some('"') => {
                    text.push(self.bump().unwrap_or('"'));
                    let mut seen = 0usize;
                    while seen < hashes && self.peek() == Some('#') {
                        text.push(self.bump().unwrap_or('#'));
                        seen += 1;
                    }
                    if seen == hashes {
                        break;
                    }
                }
                Some(c) => {
                    text.push(c);
                    self.bump();
                }
                None => return Err(self.error(start, "unterminated raw string")),
            }
        }
        self.eat_suffix(&mut text);
        Ok(TokenTree::Literal(Literal {
            text,
            kind: LitKind::Str,
            span: Span {
                start,
                end: self.here(),
            },
        }))
    }

    fn lex_bytes_or_cstr(&mut self, start: LineColumn) -> Result<TokenTree, Error> {
        let prefix = self.bump().unwrap_or('b'); // `b` or `c`
        match self.peek() {
            Some('"') => {
                let tok = self.lex_string(start, "byte string literal")?;
                Ok(prefix_literal(tok, prefix, start))
            }
            Some('r') => {
                let tok = self.lex_raw_string(start)?;
                Ok(prefix_literal(tok, prefix, start))
            }
            Some('\'') => {
                let tok = self.lex_quote(start)?;
                Ok(prefix_literal(tok, prefix, start))
            }
            _ => Err(self.error(start, "malformed byte/C-string literal")),
        }
    }

    /// Lex a token starting with `'`: either a char literal or a
    /// lifetime. `'a'` (closing quote after one char / escape) is a char
    /// literal; `'a` followed by ident characters and no closing quote
    /// is a lifetime, emitted as an [`Ident`] with the leading `'`.
    fn lex_quote(&mut self, start: LineColumn) -> Result<TokenTree, Error> {
        // Lifetime: quote, ident-start, then NOT a closing quote.
        let second = self.peek_at(1);
        let third = self.peek_at(2);
        let is_lifetime = second.map(is_ident_start).unwrap_or(false) && third != Some('\'');
        if is_lifetime {
            let mut text = String::new();
            text.push(self.bump().unwrap_or('\'')); // `'`
            while let Some(c) = self.peek() {
                if is_ident_continue(c) {
                    text.push(c);
                    self.bump();
                } else {
                    break;
                }
            }
            return Ok(TokenTree::Ident(Ident {
                text,
                span: Span {
                    start,
                    end: self.here(),
                },
            }));
        }
        // Char literal.
        let mut text = String::new();
        text.push(self.bump().unwrap_or('\'')); // opening `'`
        match self.peek() {
            Some('\\') => {
                text.push(self.bump().unwrap_or('\\'));
                // escape body up to the closing quote (covers \n, \x7f, \u{…})
                while let Some(c) = self.peek() {
                    text.push(c);
                    self.bump();
                    if c == '\'' {
                        return Ok(char_lit(text, start, self.here()));
                    }
                }
                Err(self.error(start, "unterminated char literal"))
            }
            Some(_) => {
                text.push(self.bump().unwrap_or(' '));
                match self.peek() {
                    Some('\'') => {
                        text.push(self.bump().unwrap_or('\''));
                        Ok(char_lit(text, start, self.here()))
                    }
                    _ => Err(self.error(start, "unterminated char literal")),
                }
            }
            None => Err(self.error(start, "unterminated char literal")),
        }
    }

    /// Consume a literal type suffix (e.g. `"…"suffix` is legal in macro
    /// input); keeps diagnostics aligned if one ever appears.
    fn eat_suffix(&mut self, text: &mut String) {
        while let Some(c) = self.peek() {
            if is_ident_continue(c) {
                text.push(c);
                self.bump();
            } else {
                break;
            }
        }
    }
}

fn char_lit(text: String, start: LineColumn, end: LineColumn) -> TokenTree {
    TokenTree::Literal(Literal {
        text,
        kind: LitKind::Char,
        span: Span { start, end },
    })
}

fn prefix_literal(tok: TokenTree, prefix: char, start: LineColumn) -> TokenTree {
    match tok {
        TokenTree::Literal(mut lit) => {
            lit.text.insert(0, prefix);
            // kind unchanged: byte strings count as Str, byte chars as Char
            lit.span = Span {
                start,
                end: lit.span.end(),
            };
            TokenTree::Literal(lit)
        }
        other => other,
    }
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

fn is_punct_char(c: char) -> bool {
    matches!(
        c,
        '!' | '#'
            | '$'
            | '%'
            | '&'
            | '*'
            | '+'
            | ','
            | '-'
            | '.'
            | '/'
            | ':'
            | ';'
            | '<'
            | '='
            | '>'
            | '?'
            | '@'
            | '^'
            | '|'
            | '~'
            | '\''
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(tokens: &[TokenTree]) -> Vec<String> {
        let mut out = Vec::new();
        for t in tokens {
            match t {
                TokenTree::Ident(i) => out.push(i.text.clone()),
                TokenTree::Group(g) => out.extend(idents(&g.tokens)),
                _ => {}
            }
        }
        out
    }

    #[test]
    fn comments_and_strings_hide_tokens() {
        let src = r#"
// not_a_token_a
/* not_b /* nested */ still_comment */
fn real() { let s = "not_c .unwrap()"; }
"#;
        let f = parse_file(src).unwrap();
        let ids = idents(&f.tokens);
        assert!(ids.contains(&"real".to_string()));
        assert!(ids.contains(&"s".to_string()));
        assert!(!ids.iter().any(|i| i.contains("not_")));
        assert!(!ids.iter().any(|i| i == "unwrap"));
    }

    #[test]
    fn spans_are_line_and_column_accurate() {
        let src = "fn f() {\n    x.unwrap();\n}\n";
        let f = parse_file(src).unwrap();
        // find the `unwrap` ident
        fn find<'a>(ts: &'a [TokenTree], name: &str) -> Option<&'a Ident> {
            for t in ts {
                match t {
                    TokenTree::Ident(i) if i.text == name => return Some(i),
                    TokenTree::Group(g) => {
                        if let Some(i) = find(&g.tokens, name) {
                            return Some(i);
                        }
                    }
                    _ => {}
                }
            }
            None
        }
        let u = find(&f.tokens, "unwrap").expect("unwrap token present");
        assert_eq!(u.span.start().line, 2);
        assert_eq!(u.span.start().column, 6);
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let src = "fn f<'a>(x: &'a str) -> char { 'x' }";
        let f = parse_file(src).unwrap();
        let ids = idents(&f.tokens);
        assert!(ids.iter().filter(|i| *i == "'a").count() == 2);
        fn lits(ts: &[TokenTree], out: &mut Vec<(String, LitKind)>) {
            for t in ts {
                match t {
                    TokenTree::Literal(l) => out.push((l.text.clone(), l.kind)),
                    TokenTree::Group(g) => lits(&g.tokens, out),
                    _ => {}
                }
            }
        }
        let mut ls = Vec::new();
        lits(&f.tokens, &mut ls);
        assert_eq!(ls, vec![("'x'".to_string(), LitKind::Char)]);
    }

    #[test]
    fn float_vs_int_vs_range() {
        let src = "let a = 1.5; let b = 1..2; let c = 2e3; let d = 7; let e = 1.0f32;";
        let f = parse_file(src).unwrap();
        let mut kinds = Vec::new();
        for t in &f.tokens {
            if let TokenTree::Literal(l) = t {
                kinds.push((l.text.clone(), l.kind));
            }
        }
        assert_eq!(
            kinds,
            vec![
                ("1.5".to_string(), LitKind::Float),
                ("1".to_string(), LitKind::Int),
                ("2".to_string(), LitKind::Int),
                ("2e3".to_string(), LitKind::Float),
                ("7".to_string(), LitKind::Int),
                ("1.0f32".to_string(), LitKind::Float),
            ]
        );
    }

    #[test]
    fn raw_strings_with_hashes() {
        let src = r###"let s = r#"contains "quotes" and .unwrap()"#;"###;
        let f = parse_file(src).unwrap();
        assert!(!idents(&f.tokens).iter().any(|i| i == "unwrap"));
    }

    #[test]
    fn groups_nest_and_close_spans_are_tracked() {
        let src = "mod m { fn f(a: [u8; 4]) {} }";
        let f = parse_file(src).unwrap();
        let TokenTree::Group(outer) = f.tokens.last().unwrap() else {
            panic!("expected brace group");
        };
        assert_eq!(outer.delimiter, Delimiter::Brace);
        assert_eq!(outer.span_close.start().column, 28);
    }

    #[test]
    fn unbalanced_delimiters_error() {
        assert!(parse_file("fn f() {").is_err());
        assert!(parse_file("fn f() }").is_err());
        assert!(parse_file("let s = \"unterminated").is_err());
    }

    #[test]
    fn joint_puncts_mark_multichar_operators() {
        let src = "a == b; c = d;";
        let f = parse_file(src).unwrap();
        let puncts: Vec<(char, bool)> = f
            .tokens
            .iter()
            .filter_map(|t| match t {
                TokenTree::Punct(p) => Some((p.ch, p.joint)),
                _ => None,
            })
            .collect();
        assert_eq!(
            puncts,
            vec![
                ('=', true),
                ('=', false),
                (';', false),
                ('=', false),
                (';', false)
            ]
        );
    }
}
