//! Minimal work-alike of the `criterion` API surface used by the
//! workspace benches.
//!
//! Offline stand-in for the real crate: same structure (`Criterion`,
//! `benchmark_group`, `bench_function`, `bench_with_input`,
//! `Throughput`, `BenchmarkId`, `criterion_group!`/`criterion_main!`)
//! but a deliberately simple measurement loop — median of `sample_size`
//! timed batches, printed as a single line per benchmark. Statistical
//! analysis, plotting and baselines of upstream criterion are out of
//! scope; the benches exist to produce the paper's figures via the
//! `idg-bench` binaries, which do their own timing.
//!
//! When invoked with `--test` (as `cargo test --benches` does), every
//! benchmark body runs exactly once so the suite stays fast.

use std::time::Instant;

/// Benchmark driver handle.
pub struct Criterion {
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        let test_mode = std::env::args().any(|a| a == "--test");
        Self { test_mode }
    }
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            sample_size: 10,
            throughput: None,
            test_mode: self.test_mode,
            _marker: std::marker::PhantomData,
        }
    }

    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut group = self.benchmark_group("");
        group.bench_function(id, f);
        group.finish();
        self
    }
}

/// Units for throughput reporting.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

/// A benchmark identifier (`group/function/parameter`).
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        Self {
            label: format!("{function_name}/{parameter}"),
        }
    }

    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        Self {
            label: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        Self {
            label: s.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        Self { label: s }
    }
}

/// A group of related benchmarks sharing throughput/sample settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
    test_mode: bool,
    _marker: std::marker::PhantomData<&'a ()>,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut bencher = Bencher {
            samples: Vec::new(),
            test_mode: self.test_mode,
        };
        f(&mut bencher);
        self.report(&id, &bencher);
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        let mut bencher = Bencher {
            samples: Vec::new(),
            test_mode: self.test_mode,
        };
        f(&mut bencher, input);
        self.report(&id, &bencher);
        self
    }

    pub fn finish(self) {}

    fn report(&self, id: &BenchmarkId, bencher: &Bencher) {
        let mut samples = bencher.samples.clone();
        if samples.is_empty() {
            return;
        }
        samples.sort_by(f64::total_cmp);
        let median = samples[samples.len() / 2];
        let label = if self.name.is_empty() {
            id.label.clone()
        } else {
            format!("{}/{}", self.name, id.label)
        };
        let rate = match self.throughput {
            Some(Throughput::Elements(n)) if median > 0.0 => {
                format!("   {:>12.3} Melem/s", n as f64 / median / 1e6)
            }
            Some(Throughput::Bytes(n)) if median > 0.0 => {
                format!("   {:>12.3} MB/s", n as f64 / median / 1e6)
            }
            _ => String::new(),
        };
        println!("bench {label:<48} {:>12.3} ms{rate}", median * 1e3);
    }
}

/// Timing handle passed to benchmark closures.
pub struct Bencher {
    samples: Vec<f64>,
    test_mode: bool,
}

impl Bencher {
    /// Time the routine: one warm-up call, then timed samples
    /// (single call in `--test` mode).
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        if self.test_mode {
            black_box(f());
            self.samples.push(0.0);
            return;
        }
        black_box(f()); // warm-up
        let samples = 10;
        for _ in 0..samples {
            let t0 = Instant::now();
            black_box(f());
            self.samples.push(t0.elapsed().as_secs_f64());
        }
    }
}

/// Opaque value sink preventing the optimizer from deleting the
/// benchmarked computation.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Declare a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declare the bench entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
