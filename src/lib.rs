//! # idg-repro — workspace root of the IDG reproduction
//!
//! This crate exists to host the cross-crate integration tests
//! (`tests/`) and the runnable examples (`examples/`); the library
//! surface lives in [`idg`] (re-exported here) and its substrate crates.
//!
//! Start with `examples/quickstart.rs`, the README, or the
//! per-experiment index in DESIGN.md.

#![forbid(unsafe_code)]

pub use idg;
pub use idg_imaging as imaging;
